//! Repo-specific static analysis for the contention-model workspace.
//!
//! `modelcheck` is a standalone, no-network lint pass that enforces
//! rules the compiler cannot express but the model's correctness
//! depends on. v4 is an *AST-based analyzer*: every file is tokenized
//! by a hand-rolled Rust lexer ([`lexer`] — raw/normal strings, char
//! literals vs lifetimes, nested block comments, token spans; still
//! zero dependencies), parsed by a tolerant recursive-descent parser
//! ([`ast`] — items, fns, blocks, let-bindings, calls, if/match arms,
//! all with token spans), and a set of passes ([`passes`]) walks the
//! tree: structural rules (lock discipline, atomics) as scope-tree
//! walks, the wire-taint rule as a per-function dataflow over `let`
//! bindings, and the event-loop purity rule as a crate-level
//! reachability check ([`resolve`] holds the shared name/annotation
//! helpers). Cheap textual rules stay on the line/token path, and a
//! cross-file pass checks the wire protocol for drift between
//! `proto.rs`, `codec.rs`, and the DESIGN.md protocol table.
//!
//! **Crates opt in via a root pragma.** Each crate declares the rules
//! it holds itself to with a doc line in its crate root (`src/lib.rs`,
//! or `src/main.rs` for pure binaries):
//!
//! ```text
//! //! modelcheck: no-panic, lossy-cast, missing-docs
//! ```
//!
//! [`scan_workspace`] discovers every `Cargo.toml` under the root
//! (skipping `vendor/`, `target/`, `.git/`, `fixtures/`), reads the
//! crate root's pragma, and applies the named rules to that crate's
//! `src/` tree. A crate with no pragma gets only the global rules. A
//! pragma naming an unknown rule is itself a diagnostic (`pragma`), so
//! typos fail the build instead of silently disabling a rule.
//!
//! | rule | family | what it rejects |
//! |------|--------|-----------------|
//! | `no-panic` | style | `.unwrap()`, `.expect(`, `panic!` in model code |
//! | `naked-f64` | style | `f64`/`f32` in a `pub fn` signature (`units.rs` exempt) |
//! | `lossy-cast` | style | `as f64`/`as f32` and visible float → integer casts |
//! | `no-todo-dbg` | style | `todo!` / `dbg!` anywhere scanned, tests included |
//! | `missing-docs` | style | a public item with no doc comment |
//! | `lock-discipline` | concurrency | `write()` in a `// modelcheck: read-path` fn; a second shard lock while a guard is live; a guard held across I/O |
//! | `atomics` | concurrency | `SeqCst`/`AcqRel` without a justification; `store(load(..))` read-modify-write of an atomic |
//! | `event-loop` | concurrency | a blocking call (`.lock(`, `write_lock(`, `sleep`, `read_to_end`, `write_all`, stdio macros) in a fn reachable from a `// modelcheck: event-loop` entry point, transitively through the workspace call graph |
//! | `lock-order` | concurrency | a cycle in the workspace lock-order graph (including orders split across functions), or a guard held across a call whose callee (transitively) blocks on I/O |
//! | `wire-taint` | dataflow | a wire-decoded value reaching `with_capacity`/`reserve`/`resize`/`vec![_; n]`, a slice index, or a loop bound without a dominating bounds check — in the decoding function or through any resolved call chain |
//! | `float-env` | numeric | `to_bits`/`from_bits`/`EPSILON` outside `units.rs` |
//! | `protocol-drift` | protocol | a wire kind present in `proto.rs`, `codec.rs`, or the DESIGN.md table but missing from another |
//! | `pragma` | config | a `modelcheck:` pragma naming an unknown rule |
//! | `lex` | lexer | a file the lexer cannot tokenize |
//! | `parse` | parser | a file with mismatched delimiters the parser cannot structure |
//!
//! A diagnostic on line *n* is suppressed by `// modelcheck-allow: <rule>`
//! on line *n* or anywhere in the contiguous comment block directly
//! above it (justifications are encouraged to take several lines); the
//! comment is expected to say *why* the exception is sound. Code under
//! `#[cfg(test)]` is exempt from every rule except `no-todo-dbg` —
//! which also covers crates' `tests/`, `benches/`, and `examples/`
//! trees, not just `src/`.
//!
//! **Baseline.** Findings present at adoption live in a committed
//! `modelcheck.baseline` file (`file:line:rule`, one per line): they
//! are reported as warnings, while any finding *not* in the baseline
//! is an error. `--fix-baseline` regenerates the file; see [`baseline`].
//!
//! [`Seconds`]: ../contention_model/units/struct.Seconds.html

#![warn(missing_docs)]

pub mod ast;
pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod passes;
pub mod resolve;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The rules enforced by the pass. Names are what crate-root pragmas and
/// `modelcheck-allow` comments reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` in pragma'd crate sources.
    NoPanic,
    /// Bare `f64`/`f32` in a `pub fn` signature of a pragma'd crate.
    NakedF64,
    /// Lossy `as` casts between integer and float types.
    LossyCast,
    /// `todo!` / `dbg!` anywhere.
    NoTodoDbg,
    /// Undocumented public item in a pragma'd crate.
    MissingDocs,
    /// Shard-lock discipline: write locks in read paths, nested lock
    /// acquisition, guards held across I/O.
    LockDiscipline,
    /// Atomics ordering hygiene: unjustified `SeqCst`/`AcqRel`,
    /// non-atomic read-modify-write of relaxed counters.
    Atomics,
    /// Wire-taint dataflow: a value decoded from the wire used as an
    /// allocation size, slice index, or loop bound without a dominating
    /// bounds check.
    WireTaint,
    /// Event-loop purity: a blocking call in a fn reachable from a
    /// `// modelcheck: event-loop` entry point.
    EventLoop,
    /// Lock-order hygiene: cycles in the workspace lock-order graph,
    /// and guards held across calls into (transitively) blocking code.
    LockOrder,
    /// Bit-level float access (`to_bits`/`from_bits`/`EPSILON`) outside
    /// `units.rs`.
    FloatEnv,
    /// Wire-protocol drift between `proto.rs`, `codec.rs`, and the
    /// DESIGN.md protocol table.
    ProtocolDrift,
    /// A crate-root `modelcheck:` pragma naming an unknown rule.
    Pragma,
    /// A file the lexer failed to tokenize.
    Lex,
    /// A file the parser could not structure (mismatched delimiters).
    Parse,
}

impl Rule {
    /// Every rule, in the order `--list-rules` prints them.
    pub const ALL: [Rule; 15] = [
        Rule::NoPanic,
        Rule::NakedF64,
        Rule::LossyCast,
        Rule::NoTodoDbg,
        Rule::MissingDocs,
        Rule::LockDiscipline,
        Rule::Atomics,
        Rule::EventLoop,
        Rule::LockOrder,
        Rule::WireTaint,
        Rule::FloatEnv,
        Rule::ProtocolDrift,
        Rule::Pragma,
        Rule::Lex,
        Rule::Parse,
    ];

    /// The rule's name as written in pragmas and `modelcheck-allow`
    /// comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NakedF64 => "naked-f64",
            Rule::LossyCast => "lossy-cast",
            Rule::NoTodoDbg => "no-todo-dbg",
            Rule::MissingDocs => "missing-docs",
            Rule::LockDiscipline => "lock-discipline",
            Rule::Atomics => "atomics",
            Rule::WireTaint => "wire-taint",
            Rule::EventLoop => "event-loop",
            Rule::LockOrder => "lock-order",
            Rule::FloatEnv => "float-env",
            Rule::ProtocolDrift => "protocol-drift",
            Rule::Pragma => "pragma",
            Rule::Lex => "lex",
            Rule::Parse => "parse",
        }
    }

    /// One-line description, as printed by `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NoPanic => "`.unwrap()`, `.expect(`, `panic!` in model code",
            Rule::NakedF64 => "bare `f64`/`f32` in a `pub fn` signature (units.rs exempt)",
            Rule::LossyCast => "lossy `as` casts between integer and float types",
            // Spelled via concat! so the textual pass does not flag
            // its own description.
            Rule::NoTodoDbg => concat!("`to", "do!` / `d", "bg!` anywhere, tests included"),
            Rule::MissingDocs => "a public item with no doc comment",
            Rule::LockDiscipline => {
                "write locks in read paths, nested shard locks, guards held across I/O"
            }
            Rule::Atomics => "unjustified `SeqCst`/`AcqRel`; `store(load(..))` read-modify-write",
            Rule::WireTaint => {
                "wire-decoded value used as allocation size, index, or loop bound unchecked"
            }
            Rule::EventLoop => {
                "blocking call in a fn reachable from a `modelcheck: event-loop` entry point"
            }
            Rule::LockOrder => {
                "lock-order cycle across functions, or a guard held across a blocking callee"
            }
            Rule::FloatEnv => "`to_bits`/`from_bits`/`EPSILON` outside units.rs",
            Rule::ProtocolDrift => {
                "wire kind present in proto.rs, codec.rs, or DESIGN.md but missing elsewhere"
            }
            Rule::Pragma => "a crate-root `modelcheck:` pragma naming an unknown rule",
            Rule::Lex => "a file the lexer cannot tokenize",
            Rule::Parse => "a file with mismatched delimiters the parser cannot structure",
        }
    }

    /// How a crate opts in: the pragma spelling for opt-in rules,
    /// `None` for rules that always run.
    pub fn pragma_spelling(self) -> Option<&'static str> {
        match self {
            Rule::NoPanic
            | Rule::NakedF64
            | Rule::LossyCast
            | Rule::MissingDocs
            | Rule::LockDiscipline
            | Rule::Atomics
            | Rule::WireTaint
            | Rule::EventLoop
            | Rule::LockOrder
            | Rule::FloatEnv => Some(self.name()),
            Rule::NoTodoDbg | Rule::ProtocolDrift | Rule::Pragma | Rule::Lex | Rule::Parse => None,
        }
    }

    /// The rule family reported in `--json` output: passes group into
    /// families so tooling can gate on whole categories.
    pub fn family(self) -> &'static str {
        match self {
            Rule::NoPanic
            | Rule::NakedF64
            | Rule::LossyCast
            | Rule::NoTodoDbg
            | Rule::MissingDocs => "style",
            Rule::LockDiscipline | Rule::Atomics | Rule::EventLoop | Rule::LockOrder => {
                "concurrency"
            }
            Rule::WireTaint => "dataflow",
            Rule::FloatEnv => "numeric",
            Rule::ProtocolDrift => "protocol",
            Rule::Pragma => "config",
            Rule::Lex => "lexer",
            Rule::Parse => "parser",
        }
    }
}

/// One finding: a rule violated at a `file:line:col` span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column where the finding starts.
    pub col: usize,
    /// 1-based byte column one past the finding's end (`col` when the
    /// span is unknown).
    pub end_col: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// True when the finding matches a committed baseline entry (a
    /// warning at adoption, not an error). Set by [`baseline::mark`].
    pub baselined: bool,
}

impl Diagnostic {
    /// A diagnostic with an explicit column span (1-based, end
    /// exclusive).
    pub fn spanned(
        file: &str,
        line: usize,
        col: usize,
        end_col: usize,
        rule: Rule,
        message: String,
    ) -> Self {
        Diagnostic { file: file.to_string(), line, col, end_col, rule, message, baselined: false }
    }

    /// A diagnostic covering an unknown span (column 1).
    pub fn at_line(file: &str, line: usize, rule: Rule, message: String) -> Self {
        Diagnostic::spanned(file, line, 1, 1, rule, message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

impl Diagnostic {
    /// The finding as one JSON object (hand-rolled: the pass must work
    /// with no dependencies at all).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"end_col\":{},\"rule\":\"{}\",\
             \"family\":\"{}\",\"baselined\":{},\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            self.col,
            self.end_col,
            self.rule.name(),
            self.rule.family(),
            self.baselined,
            escape_json(&self.message)
        )
    }
}

/// Renders a full diagnostic list as a JSON array.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Which rules apply to a given file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// `no-panic` applies.
    pub no_panic: bool,
    /// `naked-f64` applies.
    pub naked_f64: bool,
    /// `lossy-cast` applies.
    pub lossy_cast: bool,
    /// `missing-docs` applies.
    pub missing_docs: bool,
    /// `lock-discipline` applies.
    pub lock_discipline: bool,
    /// `atomics` applies.
    pub atomics: bool,
    /// `wire-taint` applies.
    pub wire_taint: bool,
    /// `event-loop` applies.
    pub event_loop: bool,
    /// `lock-order` applies.
    pub lock_order: bool,
    /// `float-env` applies.
    pub float_env: bool,
}

impl FileScope {
    /// No opt-in rules (only the global `no-todo-dbg` fires).
    pub const NONE: FileScope = FileScope {
        no_panic: false,
        naked_f64: false,
        lossy_cast: false,
        missing_docs: false,
        lock_discipline: false,
        atomics: false,
        wire_taint: false,
        event_loop: false,
        lock_order: false,
        float_env: false,
    };

    /// Every opt-in rule enabled.
    pub const ALL: FileScope = FileScope {
        no_panic: true,
        naked_f64: true,
        lossy_cast: true,
        missing_docs: true,
        lock_discipline: true,
        atomics: true,
        wire_taint: true,
        event_loop: true,
        lock_order: true,
        float_env: true,
    };

    /// Builds a scope from pragma rule names; unknown names are returned
    /// for the caller to report. `no-todo-dbg` is accepted but redundant
    /// (it is global).
    pub fn from_rule_names<'a>(
        names: impl IntoIterator<Item = &'a str>,
    ) -> (FileScope, Vec<String>) {
        let mut scope = FileScope::NONE;
        let mut unknown = Vec::new();
        for name in names {
            match name {
                "no-panic" => scope.no_panic = true,
                "naked-f64" => scope.naked_f64 = true,
                "lossy-cast" => scope.lossy_cast = true,
                "missing-docs" => scope.missing_docs = true,
                "lock-discipline" => scope.lock_discipline = true,
                "atomics" => scope.atomics = true,
                "wire-taint" => scope.wire_taint = true,
                "event-loop" => scope.event_loop = true,
                "lock-order" => scope.lock_order = true,
                "float-env" => scope.float_env = true,
                "no-todo-dbg" => {}
                other => unknown.push(other.to_string()),
            }
        }
        (scope, unknown)
    }

    /// Per-file adjustment of a crate-level scope: the units module is
    /// the one place bare floats *are* the API and bit-level float
    /// access is legitimate, so `naked-f64` and `float-env` are exempt
    /// there.
    pub fn for_file(self, rel: &str) -> FileScope {
        if rel.ends_with("/units.rs") || rel == "units.rs" {
            FileScope { naked_f64: false, float_env: false, ..self }
        } else {
            self
        }
    }
}

/// Extracts a crate root's `modelcheck:` pragma: the first inner-doc
/// line of the form `//! modelcheck: rule, rule, …`. Returns the
/// 0-based line index and the listed names.
pub fn parse_pragma(text: &str) -> Option<(usize, Vec<String>)> {
    for (i, line) in text.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("//!") else { continue };
        let Some(list) = rest.trim_start().strip_prefix("modelcheck:") else { continue };
        let names =
            list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        return Some((i, names));
    }
    None
}

/// Scans one file's text under an explicit rule scope; `rel` is the
/// workspace-relative path used in diagnostics. ([`scan_workspace`]
/// derives the scope from the owning crate's root pragma.) Runs the
/// per-file passes (textual, numeric, lock discipline, atomics) and
/// the graph passes (wire-taint, lock-order, event-loop purity) over a
/// one-file call graph, so a lone file behaves exactly like a one-file
/// workspace.
pub fn scan_file(rel: &str, text: &str, scope: FileScope) -> Vec<Diagnostic> {
    let scope = scope.for_file(rel);
    let (input, mut diags) = passes::FileInput::build(rel, text, scope);
    diags.extend(passes::textual::run(&input));
    diags.extend(passes::float_env::run(&input));
    if input.tokens.is_empty() {
        return diags; // lexing failed: the AST passes cannot run
    }
    let toks = input.code_tokens();
    match ast::parse(&toks) {
        Ok(tree) => {
            diags.extend(passes::lock::run(&input, &toks, &tree));
            diags.extend(passes::atomics::run(&input, &toks, &tree));
            let files =
                [graph::FileCtx { input: &input, toks: &toks, ast: &tree, crate_dir: None }];
            let g = graph::CallGraph::build(&files);
            diags.extend(run_graph_passes(&files, &g, false).0);
        }
        Err(e) => diags.push(Diagnostic::spanned(
            rel,
            e.line,
            e.col,
            e.col + 1,
            Rule::Parse,
            format!("file does not parse ({}); structural passes skipped", e.message),
        )),
    }
    diags
}

/// Runs the workspace graph passes (interprocedural wire-taint,
/// lock-order, transitive event-loop purity) over the parsed files;
/// returns the diagnostics plus, when asked, the serialized
/// per-function summaries.
fn run_graph_passes(
    files: &[graph::FileCtx<'_, '_>],
    g: &graph::CallGraph,
    want_summaries: bool,
) -> (Vec<Diagnostic>, Vec<String>) {
    let taint = passes::taint::summarize(files, g);
    let locks = passes::lock_order::harvest(files, g);
    let mut diags = passes::taint::emit(files, g, &taint);
    diags.extend(passes::lock_order::emit(files, g, &locks));
    diags.extend(passes::event_loop::run_workspace(files, g));
    let summaries =
        if want_summaries { render_summaries(files, g, &taint, &locks) } else { Vec::new() };
    (diags, summaries)
}

/// Serializes the per-function summaries, one line per graph node in
/// (file, line) order: taint flow (`ret=`, `sinks=`), lock behavior
/// (`locks=`, `held=`, `returns-lock=`), and the first blocking site
/// (`blocking=`). `-` marks an empty section. The format is consumed
/// by `--dump-summaries` and pinned by the CLI tests.
fn render_summaries(
    files: &[graph::FileCtx<'_, '_>],
    g: &graph::CallGraph,
    taint: &[passes::taint::FnTaint],
    locks: &[passes::lock_order::FnLocks],
) -> Vec<String> {
    let mut lines = Vec::with_capacity(g.nodes.len());
    for (id, n) in g.nodes.iter().enumerate() {
        let f = &files[n.file];
        let ret = passes::taint::render_labels(taint[id].ret, &n.params);
        let sinks = if taint[id].sinks.is_empty() {
            "-".to_string()
        } else {
            taint[id]
                .sinks
                .iter()
                .map(|s| {
                    format!(
                        "p{}({}):{}@{}",
                        s.param,
                        n.params.get(s.param).map(String::as_str).unwrap_or("?"),
                        s.what,
                        s.trace.join("->")
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        let acq = if locks[id].acquires.is_empty() {
            "-".to_string()
        } else {
            locks[id]
                .acquires
                .iter()
                .map(|a| format!("{}:{}@{}", a.class, if a.write { "w" } else { "r" }, a.line))
                .collect::<Vec<_>>()
                .join(",")
        };
        let held = if locks[id].held_calls.is_empty() {
            "-".to_string()
        } else {
            locks[id]
                .held_calls
                .iter()
                .map(|h| format!("{}->{}@{}", h.class, g.nodes[h.callee].name, h.line))
                .collect::<Vec<_>>()
                .join(",")
        };
        let returns_lock = locks[id].returns_lock.as_deref().unwrap_or("-");
        let blocking = locks[id]
            .blocking
            .as_ref()
            .map_or("-".to_string(), |(what, line)| format!("{what}@{line}"));
        lines.push(format!(
            "{}:{} fn {}({}) ret={} sinks={} locks={} held={} returns-lock={} blocking={}",
            f.input.rel,
            n.line,
            n.name,
            n.params.join(","),
            ret,
            sinks,
            acq,
            held,
            returns_lock,
            blocking,
        ));
    }
    lines
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

/// Walks every file under `dir` (skip-dirs excluded) in sorted order.
pub fn walk_by<F: FnMut(&Path)>(dir: &Path, visit: &mut F) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                walk_by(&path, visit);
            }
        } else {
            visit(&path);
        }
    }
}

/// A discovered crate: its directory and the rules its root opted into.
#[derive(Debug, Clone)]
pub struct CrateScope {
    /// Crate directory, workspace-relative with `/` separators (empty
    /// for a package rooted at the workspace root).
    pub dir: String,
    /// Rules enabled by the crate root's pragma.
    pub scope: FileScope,
}

fn rel_of(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Discovers every crate under `root` (any directory with a
/// `Cargo.toml`, skip-dirs excluded) and reads its root pragma from
/// `src/lib.rs` (or `src/main.rs`). Returns the per-crate scopes plus
/// diagnostics for pragmas naming unknown rules.
pub fn discover_crates(root: &Path) -> (Vec<CrateScope>, Vec<Diagnostic>) {
    let mut manifest_dirs = Vec::new();
    walk_by(root, &mut |path| {
        if path.file_name().is_some_and(|n| n == "Cargo.toml") {
            if let Some(dir) = path.parent() {
                manifest_dirs.push(dir.to_path_buf());
            }
        }
    });
    let mut crates = Vec::new();
    let mut diags = Vec::new();
    for dir in manifest_dirs {
        let Some((crate_root, text)) = ["lib.rs", "main.rs"]
            .iter()
            .map(|f| dir.join("src").join(f))
            .find_map(|p| fs::read_to_string(&p).ok().map(|t| (p, t)))
        else {
            continue;
        };
        let Some((line, names)) = parse_pragma(&text) else {
            crates.push(CrateScope { dir: rel_of(&dir, root), scope: FileScope::NONE });
            continue;
        };
        let (scope, unknown) = FileScope::from_rule_names(names.iter().map(String::as_str));
        for name in unknown {
            diags.push(Diagnostic::at_line(
                &rel_of(&crate_root, root),
                line + 1,
                Rule::Pragma,
                format!("unknown rule {name:?} in modelcheck pragma"),
            ));
        }
        crates.push(CrateScope { dir: rel_of(&dir, root), scope });
    }
    (crates, diags)
}

/// Aggregate size/shape numbers from a workspace scan, recorded in
/// `BENCH_model_eval.json` so analyzer growth is tracked across PRs.
#[derive(Debug, Clone, Copy)]
pub struct ScanStats {
    /// `.rs` files scanned.
    pub files: usize,
    /// Call-graph nodes (function definitions with bodies).
    pub graph_nodes: usize,
    /// Call-graph edges (resolved call sites).
    pub graph_edges: usize,
}

/// Scans every `.rs` file under `root` (skipping `vendor/`, `target/`,
/// `.git/`, and `fixtures/`), scoping each file by its owning crate's
/// root pragma, runs the cross-file protocol-drift pass, and returns
/// all diagnostics ordered by path and line. Baseline status is *not*
/// applied here — see [`baseline::mark`].
pub fn scan_workspace(root: &Path) -> Vec<Diagnostic> {
    scan_workspace_with_stats(root).0
}

/// [`scan_workspace`] plus the call-graph size statistics.
pub fn scan_workspace_with_stats(root: &Path) -> (Vec<Diagnostic>, ScanStats) {
    let (diags, stats, _) = analyze(root, false);
    (diags, stats)
}

/// Scans the workspace and returns the serialized per-function
/// summaries (taint flow, lock behavior, blocking sites) instead of
/// diagnostics; backs the CLI's `--dump-summaries`.
pub fn dump_summaries(root: &Path) -> String {
    let mut out = analyze(root, true).2.join("\n");
    out.push('\n');
    out
}

/// The workspace pipeline: discover crates, lex + parse every file
/// once, run the per-file passes from the shared inputs, build the
/// workspace call graph over everything that parsed, and run the graph
/// passes on top.
fn analyze(root: &Path, want_summaries: bool) -> (Vec<Diagnostic>, ScanStats, Vec<String>) {
    let (crates, mut diags) = discover_crates(root);
    let mut files = Vec::new();
    walk_by(root, &mut |path| {
        if path.extension().is_some_and(|e| e == "rs") {
            files.push(path.to_path_buf());
        }
    });
    struct Loaded {
        rel: String,
        text: String,
        scope: FileScope,
        crate_dir: Option<String>,
    }
    let mut loaded = Vec::new();
    for path in files {
        let rel = rel_of(&path, root);
        // The owning crate is the one whose src/ tree contains the file;
        // the longest directory prefix wins for nested layouts. Files
        // outside any src/ tree (tests/, benches/, examples/) get the
        // global rules only.
        let owner = crates
            .iter()
            .filter(|c| {
                if c.dir.is_empty() {
                    rel.starts_with("src/")
                } else {
                    rel.starts_with(&format!("{}/src/", c.dir))
                }
            })
            .max_by_key(|c| c.dir.len());
        let Ok(text) = fs::read_to_string(&path) else { continue };
        loaded.push(Loaded {
            rel,
            text,
            scope: owner.map_or(FileScope::NONE, |c| c.scope),
            crate_dir: owner.map(|c| c.dir.clone()),
        });
    }
    // Lex and parse each file exactly once; every pass below reads
    // these shared inputs.
    let mut inputs: Vec<passes::FileInput<'_>> = Vec::with_capacity(loaded.len());
    for l in &loaded {
        let (input, d) = passes::FileInput::build(&l.rel, &l.text, l.scope.for_file(&l.rel));
        diags.extend(d);
        inputs.push(input);
    }
    let toks: Vec<Vec<&lexer::Token<'_>>> = inputs.iter().map(|i| i.code_tokens()).collect();
    let mut asts: Vec<Option<ast::Ast>> = Vec::with_capacity(inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        if input.tokens.is_empty() {
            asts.push(None); // lexing failed: the AST passes cannot run
            continue;
        }
        match ast::parse(&toks[i]) {
            Ok(t) => asts.push(Some(t)),
            Err(e) => {
                diags.push(Diagnostic::spanned(
                    input.rel,
                    e.line,
                    e.col,
                    e.col + 1,
                    Rule::Parse,
                    format!("file does not parse ({}); structural passes skipped", e.message),
                ));
                asts.push(None);
            }
        }
    }
    for (i, input) in inputs.iter().enumerate() {
        diags.extend(passes::textual::run(input));
        diags.extend(passes::float_env::run(input));
        if let Some(t) = &asts[i] {
            diags.extend(passes::lock::run(input, &toks[i], t));
            diags.extend(passes::atomics::run(input, &toks[i], t));
        }
    }
    // Workspace call graph over every file that parsed, then the
    // interprocedural passes.
    let ctxs: Vec<graph::FileCtx<'_, '_>> = inputs
        .iter()
        .zip(&toks)
        .zip(&asts)
        .zip(&loaded)
        .filter_map(|(((input, toks), ast), l)| {
            ast.as_ref().map(|ast| graph::FileCtx {
                input,
                toks,
                ast,
                crate_dir: l.crate_dir.as_deref(),
            })
        })
        .collect();
    let g = graph::CallGraph::build(&ctxs);
    let (gd, summaries) = run_graph_passes(&ctxs, &g, want_summaries);
    diags.extend(gd);
    diags.extend(passes::drift::check_workspace(root));
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.col).cmp(&(b.file.as_str(), b.line, b.col)));
    let stats =
        ScanStats { files: inputs.len(), graph_nodes: g.nodes.len(), graph_edges: g.edge_count() };
    (diags, stats, summaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_scan(body: &str) -> Vec<Diagnostic> {
        scan_file("crates/core/src/sample.rs", body, FileScope::ALL)
    }

    #[test]
    fn unwrap_flagged_under_scope_only() {
        let body = "fn f() { x.unwrap(); }\n";
        assert_eq!(core_scan(body).len(), 1);
        assert_eq!(core_scan(body)[0].rule, Rule::NoPanic);
        assert!(scan_file("crates/experiments/src/sample.rs", body, FileScope::NONE).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(core_scan("fn f() { x.unwrap_or(0.0); }\n").is_empty());
    }

    #[test]
    fn pragma_parses_rule_lists() {
        let text = "//! Crate docs.\n//!\n//! modelcheck: no-panic, lossy-cast\npub fn x() {}\n";
        let (line, names) = parse_pragma(text).unwrap();
        assert_eq!(line, 2);
        assert_eq!(names, vec!["no-panic".to_string(), "lossy-cast".to_string()]);
        assert_eq!(parse_pragma("//! Just docs.\n"), None);

        let (scope, unknown) = FileScope::from_rule_names(names.iter().map(String::as_str));
        assert!(scope.no_panic && scope.lossy_cast);
        assert!(!scope.naked_f64 && !scope.missing_docs);
        assert!(unknown.is_empty());
        let (_, unknown) = FileScope::from_rule_names(["no-panick"]);
        assert_eq!(unknown, vec!["no-panick".to_string()]);
    }

    #[test]
    fn new_rule_names_parse() {
        let (scope, unknown) =
            FileScope::from_rule_names(["lock-discipline", "atomics", "float-env"]);
        assert!(scope.lock_discipline && scope.atomics && scope.float_env);
        assert!(!scope.no_panic);
        assert!(unknown.is_empty());
    }

    #[test]
    fn allow_on_same_or_previous_line_suppresses() {
        let same = "fn f() { x.unwrap(); } // modelcheck-allow: no-panic — invariant\n";
        assert!(core_scan(same).is_empty());
        let above = "// modelcheck-allow: no-panic — invariant\nfn f() { x.unwrap(); }\n";
        assert!(core_scan(above).is_empty());
        let wrong_rule = "// modelcheck-allow: lossy-cast\nfn f() { x.unwrap(); }\n";
        assert_eq!(core_scan(wrong_rule).len(), 1);
        // A multi-line justification block counts as one allow…
        let block = "// modelcheck-allow: no-panic — the invariant takes\n\
                     // a couple of lines to state properly\n\
                     fn f() { x.unwrap(); }\n";
        assert!(core_scan(block).is_empty());
        // …but code between the allow and the finding breaks the block.
        let detached = "// modelcheck-allow: no-panic\nfn g() {}\nfn f() { x.unwrap(); }\n";
        assert_eq!(core_scan(detached).len(), 1);
    }

    #[test]
    fn cfg_test_blocks_are_exempt_from_panics() {
        let body = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(core_scan(body).is_empty());
    }

    #[test]
    fn naked_f64_spans_multiline_signatures() {
        let body = "pub fn f(\n    a: Seconds,\n    b: f64,\n) -> Words {\n    body\n}\n";
        let d = core_scan(body);
        assert_eq!(d.len(), 2, "{d:?}"); // naked-f64 + missing-docs
        assert!(d.iter().any(|d| d.rule == Rule::NakedF64 && d.line == 1));
    }

    #[test]
    fn units_module_is_exempt_from_naked_f64_and_float_env() {
        let body = "/// Doc.\npub fn get(&self) -> f64 { self.0.to_bits(); self.0 }\n";
        assert!(scan_file("crates/core/src/units.rs", body, FileScope::ALL).is_empty());
    }

    #[test]
    fn f64_token_does_not_match_inside_identifiers() {
        let body = "/// Doc.\npub fn f(n: u64) -> Words { f64_from_u64(n); Words::new(n) }\n";
        assert!(core_scan(body).is_empty());
    }

    #[test]
    fn lossy_casts_need_an_allow() {
        assert_eq!(core_scan("fn f(n: u64) { let x = n as f64; }\n").len(), 1);
        assert!(core_scan(
            "fn f(n: u64) { let x = n as f64; } // modelcheck-allow: lossy-cast — bounded\n"
        )
        .is_empty());
        // Visible float → int truncation.
        assert_eq!(core_scan("fn f(x: f64) { let n = x.floor() as u64; }\n").len(), 1);
        assert_eq!(core_scan("fn f() { let n = 1.5 as u64; }\n").len(), 1);
        // Int → int is not modelcheck's business.
        assert!(core_scan("fn f(n: u64) { let x = n as usize; }\n").is_empty());
    }

    #[test]
    fn todo_and_dbg_flagged_even_in_tests_and_unscoped_files() {
        let pat = concat!("to", "do!()");
        let body = format!("#[cfg(test)]\nmod tests {{\n    fn f() {{ {pat}; }}\n}}\n");
        let d = scan_file("crates/experiments/src/sample.rs", &body, FileScope::NONE);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::NoTodoDbg);
    }

    #[test]
    fn missing_docs_sees_through_attributes() {
        let documented = "/// Doc.\n#[derive(Debug)]\npub struct S;\n";
        assert!(core_scan(documented).is_empty());
        let bare = "#[derive(Debug)]\npub struct S;\n";
        assert_eq!(core_scan(bare).len(), 1);
        assert_eq!(core_scan(bare)[0].rule, Rule::MissingDocs);
        // `pub use` re-exports and restricted visibility are skipped.
        assert!(core_scan("pub use crate::units::Seconds;\n").is_empty());
        assert!(core_scan("pub(crate) fn helper() {}\n").is_empty());
    }

    #[test]
    fn prose_in_comments_is_never_flagged() {
        let body = "/// Calling `.unwrap()` here would be wrong; `panic!` too.\n\
                    pub fn f() {}\n";
        assert!(core_scan(body).is_empty());
    }

    #[test]
    fn block_comments_and_strings_are_not_code() {
        // v3 (lexer-backed comment stripping): a block comment holding
        // `.unwrap()` is prose, and `//` inside a string does not hide
        // the rest of the line.
        let block = "/* x.unwrap() would be wrong */\nfn f() {}\n";
        assert!(core_scan(block).is_empty());
        let url = "fn f() { let u = \"https://host/x\"; g.unwrap(); }\n";
        let d = core_scan(url);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::NoPanic);
    }

    #[test]
    fn diagnostics_carry_spans() {
        let d = core_scan("fn f() { x.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].col), (1, 11), "{:?}", d[0]);
        assert!(d[0].end_col > d[0].col);
    }

    #[test]
    fn json_output_escapes_quotes_and_carries_family() {
        let d = Diagnostic::spanned("a.rs", 3, 5, 9, Rule::NoPanic, "say \"no\"".to_string());
        assert_eq!(
            d.to_json(),
            "{\"file\":\"a.rs\",\"line\":3,\"col\":5,\"end_col\":9,\"rule\":\"no-panic\",\
             \"family\":\"style\",\"baselined\":false,\"message\":\"say \\\"no\\\"\"}"
        );
        assert_eq!(to_json(&[]), "[]");
    }
}
