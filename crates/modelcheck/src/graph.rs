//! The workspace symbol index and call graph the v5 passes run over.
//!
//! [`CallGraph::build`] indexes every function definition in every
//! parsed file (methods and nested fns included), extracts the named
//! parameters from each signature, and resolves every call site by
//! name: a call resolves to the unique definition of that name in the
//! *calling crate*, or — when the crate defines none — to the unique
//! definition in the whole workspace. A name with two or more
//! definitions anywhere in the relevant scope (every `new`, trait
//! declaration plus impl) resolves to nothing, so propagation never
//! chases lookalikes across impls. This extends the v4 event-loop
//! pass's crate-local unique-name rule workspace-wide.
//!
//! The graph is *pragma-aware* the same way the passes are: summaries
//! are computed for every parsed file (a helper in an un-pragma'd
//! crate still contributes its behavior to callers), but findings are
//! only emitted in files whose owning crate opted into the rule.
//!
//! Three rule families consume the graph: interprocedural wire-taint
//! ([`crate::passes::taint`]), the lock-order deadlock detector
//! ([`crate::passes::lock_order`]), and the transitive event-loop
//! purity rule ([`crate::passes::event_loop`]). Their per-function
//! summaries serialize to a deterministic text form via
//! [`crate::dump_summaries`] (`--dump-summaries` on the CLI).

use crate::ast::{Ast, BlockId, FnDef, Span};
use crate::lexer::{TokKind, Token};
use crate::passes::FileInput;
use std::collections::HashMap;

/// One parsed file plus the context the graph passes need.
pub struct FileCtx<'t, 'a> {
    /// The shared per-file input.
    pub input: &'t FileInput<'a>,
    /// The file's code tokens (comments stripped).
    pub toks: &'t [&'t Token<'a>],
    /// The file's AST.
    pub ast: &'t Ast,
    /// Owning crate directory, when the file sits in a crate's `src/`.
    pub crate_dir: Option<&'t str>,
}

/// Index into [`CallGraph::nodes`].
pub type NodeId = usize;

/// One function definition with a body.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the defining file in the `FileCtx` slice.
    pub file: usize,
    /// Index into that file's `ast.fns`.
    pub def: usize,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The body block.
    pub body: BlockId,
    /// Named parameters in declaration order, the receiver excluded;
    /// a pattern the tracker cannot name (destructuring) is `""` so
    /// argument positions stay aligned.
    pub params: Vec<String>,
}

/// A resolved call site inside a function body.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// The called function.
    pub callee: NodeId,
    /// Token index of the callee name at the call site.
    pub name_tok: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every function definition with a body, in file order.
    pub nodes: Vec<FnNode>,
    /// `edges[n]` are `n`'s resolved call sites, sorted by `name_tok`.
    pub edges: Vec<Vec<CallSite>>,
    node_by_def: HashMap<(usize, usize), NodeId>,
}

impl CallGraph {
    /// Builds the graph over every parsed file.
    pub fn build(files: &[FileCtx<'_, '_>]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut node_by_def = HashMap::new();
        // Definition counts include bodyless declarations (trait
        // methods, extern fns): a name with a declaration *and* a
        // definition is ambiguous, exactly as two impls are.
        let mut crate_defs: HashMap<(Option<&str>, &str), u32> = HashMap::new();
        let mut global_defs: HashMap<&str, u32> = HashMap::new();
        let mut crate_nodes: HashMap<(Option<&str>, String), Vec<NodeId>> = HashMap::new();
        let mut global_nodes: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (di, def) in f.ast.fns.iter().enumerate() {
                *crate_defs.entry((f.crate_dir, def.name.as_str())).or_default() += 1;
                *global_defs.entry(def.name.as_str()).or_default() += 1;
                let Some(body) = def.body else { continue };
                let id = nodes.len();
                nodes.push(FnNode {
                    file: fi,
                    def: di,
                    name: def.name.clone(),
                    line: def.line,
                    body,
                    params: params_of(f.toks, f.ast, def),
                });
                node_by_def.insert((fi, di), id);
                crate_nodes.entry((f.crate_dir, def.name.clone())).or_default().push(id);
                global_nodes.entry(def.name.clone()).or_default().push(id);
            }
        }
        let resolve = |crate_dir: Option<&str>, name: &str| -> Option<NodeId> {
            let in_crate = crate_defs.get(&(crate_dir, name)).copied().unwrap_or(0);
            if in_crate == 1 {
                return match crate_nodes.get(&(crate_dir, name.to_string())).map(Vec::as_slice) {
                    Some(&[one]) => Some(one),
                    _ => None,
                };
            }
            if in_crate > 1 {
                return None;
            }
            if global_defs.get(name).copied().unwrap_or(0) == 1 {
                return match global_nodes.get(name).map(Vec::as_slice) {
                    Some(&[one]) => Some(one),
                    _ => None,
                };
            }
            None
        };
        let mut edges = Vec::with_capacity(nodes.len());
        for n in &nodes {
            let f = &files[n.file];
            let block = &f.ast.blocks[n.body];
            let mut out = Vec::new();
            for call in f.ast.calls_in((block.open, block.close + 1)) {
                let name = f.toks[call.name_tok].text;
                if call.is_macro {
                    continue;
                }
                if let Some(callee) = resolve(f.crate_dir, name) {
                    out.push(CallSite { callee, name_tok: call.name_tok });
                }
            }
            edges.push(out);
        }
        CallGraph { nodes, edges, node_by_def }
    }

    /// The node for `(file, def)`, when that definition has a body.
    pub fn node_of(&self, file: usize, def: usize) -> Option<NodeId> {
        self.node_by_def.get(&(file, def)).copied()
    }

    /// The resolved callee of the call at `name_tok` inside `node`'s
    /// body, if any.
    pub fn callee_of(&self, node: NodeId, name_tok: usize) -> Option<NodeId> {
        let e = &self.edges[node];
        let i = e.partition_point(|c| c.name_tok < name_tok);
        e.get(i).filter(|c| c.name_tok == name_tok).map(|c| c.callee)
    }

    /// Total resolved call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Extracts the named parameters from a signature span. The receiver
/// (`self` in any form) is skipped so parameter indices line up with
/// call-site argument positions for both free and method calls.
fn params_of(toks: &[&Token<'_>], ast: &Ast, def: &FnDef) -> Vec<String> {
    let sig_end = def.sig.1.min(toks.len());
    let Some(open) = (def.sig.0..sig_end).find(|&k| toks[k].text == "(") else {
        return Vec::new();
    };
    let close = ast.pairs.get(open).copied().unwrap_or(usize::MAX);
    if close == usize::MAX || close > def.sig.1 {
        return Vec::new();
    }
    let mut params = Vec::new();
    let mut piece_start = open + 1;
    let mut angle = 0i64;
    let mut k = open + 1;
    while k <= close {
        if k == close {
            param_piece(toks, piece_start, k, &mut params);
            break;
        }
        match toks[k].text {
            "(" | "[" | "{" => {
                k = ast.pairs.get(k).copied().unwrap_or(k) + 1;
                continue;
            }
            "<" => angle += 1,
            ">" => {
                // `->` in an `Fn(..) -> T` bound is not a closing angle.
                let arrow = k > 0 && toks[k - 1].text == "-" && toks[k - 1].end == toks[k].start;
                if !arrow && angle > 0 {
                    angle -= 1;
                }
            }
            "," if angle == 0 => {
                param_piece(toks, piece_start, k, &mut params);
                piece_start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    params
}

/// Records one comma-separated parameter piece: the simple binding
/// name, `""` for patterns the dataflow cannot name, nothing for the
/// receiver.
fn param_piece(toks: &[&Token<'_>], start: usize, end: usize, params: &mut Vec<String>) {
    if start >= end {
        return;
    }
    // The pattern is everything before the first stand-alone `:`.
    let mut pat_end = end;
    for k in start..end {
        if toks[k].text != ":" {
            continue;
        }
        let fused_next = toks.get(k + 1).is_some_and(|n| n.text == ":" && toks[k].end == n.start);
        let fused_prev = k > start && toks[k - 1].text == ":" && toks[k - 1].end == toks[k].start;
        if !fused_next && !fused_prev {
            pat_end = k;
            break;
        }
    }
    let idents: Vec<&str> = (start..pat_end)
        .filter(|&k| toks[k].kind == TokKind::Ident && !matches!(toks[k].text, "mut" | "ref"))
        .map(|k| toks[k].text)
        .collect();
    match idents.as_slice() {
        ["self"] => {}
        [one] => params.push((*one).to_string()),
        _ => params.push(String::new()),
    }
}

/// Splits a call's argument span at top-level commas, one span per
/// argument (empty when the call has no arguments).
pub fn split_args(ast: &Ast, toks: &[&Token<'_>], args: Span) -> Vec<Span> {
    let end = args.1.min(toks.len());
    if args.0 >= end {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut piece = args.0;
    let mut k = args.0;
    while k < end {
        match toks[k].text {
            "(" | "[" | "{" => {
                k = ast.pairs.get(k).copied().unwrap_or(k).max(k) + 1;
                continue;
            }
            "," => {
                out.push((piece, k));
                piece = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    out.push((piece, end));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::FileScope;

    fn ctx_of<'t, 'a>(
        input: &'t FileInput<'a>,
        toks: &'t [&'t Token<'a>],
        ast: &'t Ast,
        crate_dir: Option<&'t str>,
    ) -> FileCtx<'t, 'a> {
        FileCtx { input, toks, ast, crate_dir }
    }

    #[test]
    fn unique_names_resolve_and_duplicates_do_not() {
        let src = "fn top() { helper(); dup(); }\n\
                   fn helper() {}\n\
                   impl A { fn dup(&self) {} }\n\
                   impl B { fn dup(&self) {} }\n";
        let (input, _) = FileInput::build("x.rs", src, FileScope::ALL);
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        let g = CallGraph::build(&[ctx_of(&input, &toks, &ast, Some("c"))]);
        assert_eq!(g.nodes.len(), 4);
        let top = g.nodes.iter().position(|n| n.name == "top").unwrap();
        assert_eq!(g.edges[top].len(), 1, "only `helper` resolves");
        assert_eq!(g.nodes[g.edges[top][0].callee].name, "helper");
    }

    #[test]
    fn crate_local_definitions_shadow_workspace_ones() {
        let a = "fn caller() { shared(); }\nfn shared() {}\n";
        let b = "fn shared() {}\n";
        let (ia, _) = FileInput::build("a.rs", a, FileScope::ALL);
        let (ib, _) = FileInput::build("b.rs", b, FileScope::ALL);
        let (ta, tb) = (ia.code_tokens(), ib.code_tokens());
        let (pa, pb) = (parse(&ta).unwrap(), parse(&tb).unwrap());
        let g =
            CallGraph::build(&[ctx_of(&ia, &ta, &pa, Some("a")), ctx_of(&ib, &tb, &pb, Some("b"))]);
        let caller = g.nodes.iter().position(|n| n.name == "caller").unwrap();
        assert_eq!(g.edges[caller].len(), 1);
        assert_eq!(g.nodes[g.edges[caller][0].callee].file, 0, "crate-local wins");
    }

    #[test]
    fn cross_crate_unique_names_resolve() {
        let a = "fn caller() { only_in_b(); }\n";
        let b = "fn only_in_b() {}\n";
        let (ia, _) = FileInput::build("a.rs", a, FileScope::ALL);
        let (ib, _) = FileInput::build("b.rs", b, FileScope::ALL);
        let (ta, tb) = (ia.code_tokens(), ib.code_tokens());
        let (pa, pb) = (parse(&ta).unwrap(), parse(&tb).unwrap());
        let g =
            CallGraph::build(&[ctx_of(&ia, &ta, &pa, Some("a")), ctx_of(&ib, &tb, &pb, Some("b"))]);
        let caller = g.nodes.iter().position(|n| n.name == "caller").unwrap();
        assert_eq!(g.edges[caller].len(), 1);
        assert_eq!(g.nodes[g.edges[caller][0].callee].name, "only_in_b");
    }

    #[test]
    fn params_skip_receiver_and_keep_positions() {
        let src = "impl S {\n\
                   \x20 fn m(&mut self, len: usize, (a, b): (u8, u8), map: HashMap<K, V>) {}\n\
                   }\n\
                   fn free(x: &[u8], mut n: u64) {}\n";
        let (input, _) = FileInput::build("x.rs", src, FileScope::ALL);
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        let g = CallGraph::build(&[ctx_of(&input, &toks, &ast, None)]);
        let m = g.nodes.iter().find(|n| n.name == "m").unwrap();
        assert_eq!(m.params, vec!["len".to_string(), String::new(), "map".to_string()]);
        let free = g.nodes.iter().find(|n| n.name == "free").unwrap();
        assert_eq!(free.params, vec!["x".to_string(), "n".to_string()]);
    }

    #[test]
    fn split_args_handles_nested_groups() {
        let src = "fn f() { g(a, h(b, c), [d, e], k); }\n";
        let (input, _) = FileInput::build("x.rs", src, FileScope::ALL);
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        let call = ast.calls.iter().find(|c| toks[c.name_tok].text == "g").unwrap();
        let parts = split_args(&ast, &toks, call.args);
        assert_eq!(parts.len(), 4);
        let texts: Vec<String> = parts
            .iter()
            .map(|s| toks[s.0..s.1].iter().map(|t| t.text).collect::<Vec<_>>().join(" "))
            .collect();
        assert_eq!(texts[0], "a");
        assert_eq!(texts[1], "h ( b , c )");
        assert_eq!(texts[3], "k");
    }
}
