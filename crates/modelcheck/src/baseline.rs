//! Baseline ratcheting: findings present at a rule's adoption are
//! warnings, new findings are errors.
//!
//! The committed `modelcheck.baseline` at the scan root holds one
//! `file:line:rule` entry per accepted pre-existing finding (plus `#`
//! comments). [`mark`] flags matching diagnostics as baselined; the CLI
//! exits non-zero only for non-baselined findings and `--fix-baseline`
//! regenerates the file from the current scan. The format is
//! line-oriented and sorted so diffs review like any other code change
//! — shrinking the file is progress, growing it is a reviewable
//! decision.
//!
//! Line numbers make entries brittle against unrelated edits by
//! design: a moved finding resurfaces as an error and either gets
//! fixed or consciously re-baselined.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::Diagnostic;

/// One baseline entry: `(file, line, rule-name)`.
pub type Entry = (String, usize, String);

/// The default baseline location for a scan root.
pub fn default_path(root: &Path) -> PathBuf {
    root.join("modelcheck.baseline")
}

/// Parses baseline text: one `file:line:rule` per line, `#` comments
/// and blank lines ignored. Unparseable lines are returned separately
/// so the CLI can report them.
pub fn parse(text: &str) -> (BTreeSet<Entry>, Vec<String>) {
    let mut entries = BTreeSet::new();
    let mut bad = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split from the right: paths never contain ':' here, but being
        // defensive costs nothing.
        let parsed = (|| {
            let (rest, rule) = line.rsplit_once(':')?;
            let (file, lineno) = rest.rsplit_once(':')?;
            let lineno: usize = lineno.parse().ok()?;
            Some((file.to_string(), lineno, rule.trim().to_string()))
        })();
        match parsed {
            Some(e) => {
                entries.insert(e);
            }
            None => bad.push(raw.to_string()),
        }
    }
    (entries, bad)
}

/// Renders a diagnostic list as baseline text (sorted, deduplicated).
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# modelcheck baseline — findings accepted at rule-adoption time.\n\
         # These report as warnings; anything not listed here is an error.\n\
         # Regenerate with `cargo run -p modelcheck -- --fix-baseline`.\n",
    );
    let entries: BTreeSet<String> =
        diags.iter().map(|d| format!("{}:{}:{}", d.file, d.line, d.rule.name())).collect();
    for e in entries {
        out.push_str(&e);
        out.push('\n');
    }
    out
}

/// Sets [`Diagnostic::baselined`] on every finding matching a baseline
/// entry. Returns how many entries are *stale* (in the baseline but no
/// longer found), which the CLI surfaces as a nudge to regenerate.
pub fn mark(diags: &mut [Diagnostic], entries: &BTreeSet<Entry>) -> usize {
    let mut seen = BTreeSet::new();
    for d in diags.iter_mut() {
        let key = (d.file.clone(), d.line, d.rule.name().to_string());
        if entries.contains(&key) {
            d.baselined = true;
            seen.insert(key);
        }
    }
    entries.len() - seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    #[test]
    fn round_trips_through_render_and_parse() {
        let diags = vec![
            Diagnostic::at_line("b.rs", 7, Rule::LossyCast, "x".into()),
            Diagnostic::at_line("a.rs", 3, Rule::NoPanic, "y".into()),
            Diagnostic::at_line("a.rs", 3, Rule::NoPanic, "dup".into()),
        ];
        let text = render(&diags);
        let (entries, bad) = parse(&text);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&("a.rs".into(), 3, "no-panic".into())));
        assert!(entries.contains(&("b.rs".into(), 7, "lossy-cast".into())));
    }

    #[test]
    fn mark_splits_baselined_from_new_and_counts_stale() {
        let (entries, _) = parse("a.rs:3:no-panic\ngone.rs:1:no-panic\n# comment\n");
        let mut diags = vec![
            Diagnostic::at_line("a.rs", 3, Rule::NoPanic, "old".into()),
            Diagnostic::at_line("a.rs", 4, Rule::NoPanic, "new".into()),
        ];
        let stale = mark(&mut diags, &entries);
        assert!(diags[0].baselined && !diags[1].baselined);
        assert_eq!(stale, 1);
    }

    #[test]
    fn bad_lines_are_reported_not_ignored() {
        let (entries, bad) = parse("not an entry\na.rs:xx:rule\n");
        assert!(entries.is_empty());
        assert_eq!(bad.len(), 2);
    }
}
