//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p modelcheck                      # human-readable diagnostics
//! cargo run -p modelcheck -- --emit json       # machine-readable JSON array
//! cargo run -p modelcheck -- --emit github     # GitHub Actions annotations
//! cargo run -p modelcheck -- --list-rules      # every rule, one per line
//! cargo run -p modelcheck -- --dump-summaries  # per-function summaries
//! cargo run -p modelcheck -- --fix-baseline    # accept current findings
//! cargo run -p modelcheck -- --baseline F      # read/write baseline at F
//! cargo run -p modelcheck -- <root>            # scan a different tree
//! ```
//!
//! Findings listed in the baseline file (`modelcheck.baseline` at the
//! scan root by default) are reported as warnings; anything else is an
//! error. Exits 0 when there are no *new* findings, 1 when any
//! non-baselined rule fires, 2 on usage errors — so CI can gate on it
//! directly.
//!
//! ## `--emit json` output schema
//!
//! One JSON array of finding objects, sorted by (file, line, col).
//! Every object carries exactly these keys, in this order:
//!
//! ```text
//! file       string  path relative to the scan root, `/`-separated
//! line       number  1-based line of the finding
//! col        number  1-based starting column on that line
//! end_col    number  1-based column one past the flagged token
//! rule       string  rule name as printed by --list-rules
//! family     string  rule family (style, concurrency, dataflow,
//!                    numeric, protocol, config, lexer, parser)
//! baselined  bool    true when the finding is in the baseline file
//! message    string  human-readable explanation with the fix hint
//! ```
//!
//! The schema is append-only: consumers may rely on these keys keeping
//! their meaning, and must ignore keys they do not recognize.
//! `--json` is a compatibility alias for `--emit json`.
//!
//! ## `--emit github` output format
//!
//! One [workflow command] per finding —
//! `::error file=F,line=L,col=C,endColumn=E,title=modelcheck R::MSG`
//! (baselined findings use `::warning`) — so a CI job's findings show
//! up as inline annotations on the pull request diff with no extra
//! tooling. Message text is escaped per the workflow-command rules
//! (`%` → `%25`, newlines → `%0A`/`%0D`).
//!
//! [workflow command]:
//!     https://docs.github.com/actions/reference/workflow-commands-for-github-actions
//!
//! ## `--list-rules` output format
//!
//! One line per rule, `tab`-separated:
//! `name<TAB>family<TAB>pragma<TAB>description`, where `pragma` is the
//! spelling to put in a `//! modelcheck:` header line to opt a file in
//! (or `-` for always-on rules that no pragma controls).
//!
//! ## `--dump-summaries` output format
//!
//! One line per call-graph node (function definition with a body),
//! sorted by (file, line): the signature, the interprocedural taint
//! summary (`ret=` labels and `sinks=` reached by parameters), and the
//! lock summary (`locks=` acquired, `held=` guards held across calls,
//! `returns-lock=`, `blocking=`). A debugging view of exactly what the
//! graph passes propagate — not a stable interface.

use std::path::PathBuf;
use std::process::ExitCode;

/// How findings are printed.
#[derive(Clone, Copy, PartialEq)]
enum Emit {
    Human,
    Json,
    Github,
}

/// Escapes a workflow-command *value* (the message after `::`).
fn gh_escape_value(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes a workflow-command *property* (file, title — `,` and `:`
/// would terminate the property otherwise).
fn gh_escape_prop(s: &str) -> String {
    gh_escape_value(s).replace(':', "%3A").replace(',', "%2C")
}

fn main() -> ExitCode {
    let mut emit = Emit::Human;
    let mut fix_baseline = false;
    let mut dump_summaries = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => emit = Emit::Json,
            "--emit" => match args.next().as_deref() {
                Some("human") => emit = Emit::Human,
                Some("json") => emit = Emit::Json,
                Some("github") => emit = Emit::Github,
                Some(other) => {
                    eprintln!("modelcheck: unknown emit mode `{other}` (human|json|github)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("modelcheck: --emit needs a mode (human|json|github)");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in modelcheck::Rule::ALL {
                    println!(
                        "{}\t{}\t{}\t{}",
                        rule.name(),
                        rule.family(),
                        rule.pragma_spelling().unwrap_or("-"),
                        rule.describe()
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--dump-summaries" => dump_summaries = true,
            "--fix-baseline" => fix_baseline = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("modelcheck: --baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: modelcheck [--emit human|json|github] [--list-rules] \
                     [--dump-summaries] [--fix-baseline] [--baseline <file>] [workspace-root]"
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("modelcheck: unrecognized argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo run -p modelcheck` sets the manifest dir to crates/modelcheck;
    // the workspace root is two levels up.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    let baseline_path = baseline_path.unwrap_or_else(|| modelcheck::baseline::default_path(&root));

    if dump_summaries {
        print!("{}", modelcheck::dump_summaries(&root));
        return ExitCode::SUCCESS;
    }

    let mut diags = modelcheck::scan_workspace(&root);

    if fix_baseline {
        let text = modelcheck::baseline::render(&diags);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("modelcheck: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "modelcheck: baselined {} finding{} into {}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut stale = 0;
    if let Ok(text) = std::fs::read_to_string(&baseline_path) {
        let (entries, bad) = modelcheck::baseline::parse(&text);
        for b in &bad {
            eprintln!("modelcheck: unparseable baseline line ignored: {b:?}");
        }
        stale = modelcheck::baseline::mark(&mut diags, &entries);
    }
    let new = diags.iter().filter(|d| !d.baselined).count();

    match emit {
        Emit::Json => println!("{}", modelcheck::to_json(&diags)),
        Emit::Github => {
            for d in &diags {
                let level = if d.baselined { "warning" } else { "error" };
                println!(
                    "::{level} file={},line={},col={},endColumn={},title={}::{}",
                    gh_escape_prop(&d.file),
                    d.line,
                    d.col,
                    d.end_col,
                    gh_escape_prop(&format!("modelcheck {}", d.rule.name())),
                    gh_escape_value(&d.message)
                );
            }
            eprintln!(
                "modelcheck: {new} new diagnostic{}, {} baselined",
                if new == 1 { "" } else { "s" },
                diags.len() - new
            );
        }
        Emit::Human => {
            for d in &diags {
                if d.baselined {
                    println!("{d} (baselined)");
                } else {
                    println!("{d}");
                }
            }
            eprintln!(
                "modelcheck: {} new diagnostic{}, {} baselined, in {}",
                new,
                if new == 1 { "" } else { "s" },
                diags.len() - new,
                root.display()
            );
            if stale > 0 {
                eprintln!(
                    "modelcheck: {stale} stale baseline entr{} — run --fix-baseline to shrink \
                     the baseline",
                    if stale == 1 { "y" } else { "ies" }
                );
            }
        }
    }
    if new == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
