//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p modelcheck            # human-readable file:line diagnostics
//! cargo run -p modelcheck -- --json  # machine-readable JSON array
//! cargo run -p modelcheck -- <root>  # scan a different tree (used by tests)
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any rule fires, 2 on usage
//! errors — so CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: modelcheck [--json] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("modelcheck: unrecognized argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo run -p modelcheck` sets the manifest dir to crates/modelcheck;
    // the workspace root is two levels up.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    let diags = modelcheck::scan_workspace(&root);
    if json {
        println!("{}", modelcheck::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        eprintln!(
            "modelcheck: {} diagnostic{} in {}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            root.display()
        );
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
