//! The `event-loop` pass: no blocking calls in code reachable from the
//! evented engine.
//!
//! Entry points are marked with a `// modelcheck: event-loop` comment
//! on the `fn` (trailing or in the block above, like
//! `modelcheck: read-path`). v5 closes the marked set over the whole
//! workspace call graph ([`crate::graph`]): every function reachable
//! from a root through resolved calls — any depth, across files and
//! crates — is checked. Resolution is deliberately unique-name-only
//! (a name with several definitions resolves to nothing, so the
//! propagation never chases lookalikes across impls), and findings are
//! only emitted in files whose crate opted into the rule; helpers in
//! other crates are traversed but report nothing themselves.
//!
//! Inside the reachable set, these shapes are findings:
//!
//! * `.lock(` / `write_lock(` — mutex or shard write-lock acquisition
//!   parks the loop thread behind whoever holds it. (`read_lock` is
//!   exempt: core-local replica reads are the designed hot path.)
//! * `sleep(` — `std::thread::sleep` stalls every connection on the
//!   core.
//! * `.read_to_end(` / `.read_to_string(` / `.write_all(` — these
//!   retry until EOF/full write, defeating nonblocking registration.
//! * `println!` / `eprintln!` / `print!` / `eprint!` — stdio locks and
//!   blocks on a slow consumer; use the metrics path instead.
//!
//! `modelcheck-allow: event-loop — <why>` suppresses a finding;
//! `#[cfg(test)]` code is exempt.

use crate::graph::{CallGraph, FileCtx, NodeId};
use crate::resolve::fn_annotated;
use crate::{Diagnostic, Rule};
use std::collections::VecDeque;

/// The annotation that marks an event-loop entry point.
pub const MARKER: &str = "modelcheck: event-loop";

/// Blocking method-call names.
const BLOCKING_METHODS: [&str; 4] = ["lock", "read_to_end", "read_to_string", "write_all"];
/// Blocking free/path call names.
const BLOCKING_CALLS: [&str; 2] = ["write_lock", "sleep"];
/// Blocking macros.
const BLOCKING_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

/// Runs the event-loop purity rule over the workspace: BFS from the
/// annotated roots across the call graph, then check every reachable
/// body for blocking shapes.
pub fn run_workspace(files: &[FileCtx<'_, '_>], g: &CallGraph) -> Vec<Diagnostic> {
    let n = g.nodes.len();
    // BFS parents, for the call-path in the message; `root_of` doubles
    // as the visited set.
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut root_of: Vec<Option<NodeId>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (id, node) in g.nodes.iter().enumerate() {
        let f = &files[node.file];
        if f.input.scope.event_loop && fn_annotated(f.input, node.line, MARKER) {
            root_of[id] = Some(id);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for site in &g.edges[id] {
            if root_of[site.callee].is_none() {
                root_of[site.callee] = root_of[id];
                parent[site.callee] = Some(id);
                queue.push_back(site.callee);
            }
        }
    }

    let mut diags = Vec::new();
    for (id, node) in g.nodes.iter().enumerate() {
        if root_of[id].is_none() {
            continue;
        }
        let f = &files[node.file];
        if !f.input.scope.event_loop || f.input.in_test(node.line) {
            continue;
        }
        let block = &f.ast.blocks[node.body];
        for call in f.ast.calls_in((block.open, block.close + 1)) {
            let name = f.toks[call.name_tok].text;
            let shape = if call.is_macro && BLOCKING_MACROS.contains(&name) {
                Some(format!("`{name}!`"))
            } else if call.is_method && BLOCKING_METHODS.contains(&name) {
                Some(format!("`.{name}(`"))
            } else if !call.is_method && BLOCKING_CALLS.contains(&name) {
                Some(format!("`{name}(`"))
            } else {
                None
            };
            let Some(shape) = shape else { continue };
            let t = f.toks[call.name_tok];
            if f.input.allowed(t.line - 1, Rule::EventLoop) || f.input.in_test(t.line) {
                continue;
            }
            // Reconstruct the BFS path root → … → this fn's caller.
            let mut chain = Vec::new();
            let mut cur = id;
            while let Some(p) = parent[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            let names: Vec<&str> = chain.iter().map(|&i| g.nodes[i].name.as_str()).collect();
            let via = match names.as_slice() {
                [] => String::new(),
                [root] => format!(" (called from `{root}`)"),
                [root, rest @ ..] => {
                    format!(" (called from `{root}` through `{}`)", rest.join("` -> `"))
                }
            };
            diags.push(Diagnostic::spanned(
                f.input.rel,
                t.line,
                t.col,
                t.col + t.text.len(),
                Rule::EventLoop,
                format!(
                    "blocking call {shape} in event-loop-reachable `fn {}`{via} — the evented \
                     engine must never block; move this off-loop or justify with \
                     `modelcheck-allow: event-loop`",
                    node.name
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::passes::FileInput;
    use crate::FileScope;

    fn scan(src: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", src, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        let files = [FileCtx { input: &input, toks: &toks, ast: &ast, crate_dir: None }];
        let g = CallGraph::build(&files);
        run_workspace(&files, &g)
    }

    #[test]
    fn sleep_in_annotated_fn_fires() {
        let src = "// modelcheck: event-loop\n\
                   fn event_loop(&mut self) {\n\
                   \x20   std::thread::sleep(d);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("sleep"));
    }

    #[test]
    fn propagates_one_level_to_unique_callees() {
        let src = "// modelcheck: event-loop\n\
                   fn event_loop(&mut self) { self.accept_ready(); }\n\
                   fn accept_ready(&mut self) { let g = self.shards.lock().unwrap(); }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("accept_ready"));
        assert!(d[0].message.contains("called from `event_loop`"), "{d:?}");
    }

    #[test]
    fn propagates_transitively_with_the_full_path() {
        let src = "// modelcheck: event-loop\n\
                   fn event_loop(&mut self) { self.on_readable(); }\n\
                   fn on_readable(&mut self) { self.process_rbuf(); }\n\
                   fn process_rbuf(&mut self) { flush_metrics(); }\n\
                   fn flush_metrics() { out.write_all(b); }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`fn flush_metrics`"), "{d:?}");
        assert!(
            d[0].message
                .contains("called from `event_loop` through `on_readable` -> `process_rbuf`"),
            "{d:?}"
        );
    }

    #[test]
    fn ambiguous_names_do_not_propagate() {
        let src = "// modelcheck: event-loop\n\
                   fn event_loop(&mut self) { self.conn.drain(); }\n\
                   impl A { fn drain(&self) { std::thread::sleep(d); } }\n\
                   impl B { fn drain(&self) { std::thread::sleep(d); } }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unannotated_fns_and_read_lock_are_fine() {
        let src = "fn offline() { std::thread::sleep(d); }\n\
                   // modelcheck: event-loop\n\
                   fn on_readable(&mut self) { let g = read_lock(&self.shard); }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn stdio_macros_write_all_and_write_lock_fire() {
        let src = "// modelcheck: event-loop\n\
                   fn process(&mut self) {\n\
                   \x20   eprintln!(\"slow\");\n\
                   \x20   out.write_all(b);\n\
                   \x20   let g = write_lock(&self.shard);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn allow_suppresses_with_justification() {
        let src = "// modelcheck: event-loop\n\
                   fn process(&mut self) {\n\
                   \x20   // modelcheck-allow: event-loop — startup banner, before the loop spins\n\
                   \x20   eprintln!(\"listening\");\n\
                   }\n";
        assert!(scan(src).is_empty());
    }
}
