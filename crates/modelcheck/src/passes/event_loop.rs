//! The `event-loop` pass: no blocking calls in code reachable from the
//! evented engine.
//!
//! Entry points are marked with a `// modelcheck: event-loop` comment
//! on the `fn` (trailing or in the block above, like
//! `modelcheck: read-path`). The marked set is closed one call level
//! deep within the crate: a call whose name resolves to exactly one
//! function definition in the crate pulls that function in too.
//! Resolution is deliberately unique-name-only — a name with several
//! definitions (every `new`, both `drain`s) resolves to nothing, so
//! the propagation never chases lookalikes across impls.
//!
//! Inside the reachable set, these shapes are findings:
//!
//! * `.lock(` / `write_lock(` — mutex or shard write-lock acquisition
//!   parks the loop thread behind whoever holds it. (`read_lock` is
//!   exempt: core-local replica reads are the designed hot path.)
//! * `sleep(` — `std::thread::sleep` stalls every connection on the
//!   core.
//! * `.read_to_end(` / `.read_to_string(` / `.write_all(` — these
//!   retry until EOF/full write, defeating nonblocking registration.
//! * `println!` / `eprintln!` / `print!` / `eprint!` — stdio locks and
//!   blocks on a slow consumer; use the metrics path instead.
//!
//! `modelcheck-allow: event-loop — <why>` suppresses a finding;
//! `#[cfg(test)]` code is exempt.

use super::FileInput;
use crate::ast::Ast;
use crate::lexer::Token;
use crate::resolve::fn_annotated;
use crate::{Diagnostic, Rule};
use std::collections::HashMap;

/// The annotation that marks an event-loop entry point.
pub const MARKER: &str = "modelcheck: event-loop";

/// Blocking method-call names.
const BLOCKING_METHODS: [&str; 4] = ["lock", "read_to_end", "read_to_string", "write_all"];
/// Blocking free/path call names.
const BLOCKING_CALLS: [&str; 2] = ["write_lock", "sleep"];
/// Blocking macros.
const BLOCKING_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

/// One file of a crate, pre-lexed and pre-parsed by the caller.
pub struct CrateFile<'t, 'a> {
    /// The shared per-file input.
    pub input: &'t FileInput<'a>,
    /// The file's code tokens (comments stripped).
    pub toks: &'t [&'t Token<'a>],
    /// The file's AST.
    pub ast: &'t Ast,
}

/// Runs the event-loop purity rule over one crate's files, so call
/// propagation can cross file boundaries within the crate.
pub fn run_crate(files: &[CrateFile<'_, '_>]) -> Vec<Diagnostic> {
    // Index every fn by name for unique-name resolution, and collect
    // the annotated roots.
    let mut by_name: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    let mut reachable: Vec<(usize, usize, String)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.input.scope.event_loop {
            continue;
        }
        for (di, def) in f.ast.fns.iter().enumerate() {
            by_name.entry(def.name.as_str()).or_default().push((fi, di));
            if fn_annotated(f.input, def.line, MARKER) {
                reachable.push((fi, di, def.name.clone()));
            }
        }
    }
    // Close one call level deep.
    let roots: Vec<(usize, usize, String)> = reachable.clone();
    for (fi, di, root_name) in &roots {
        let f = &files[*fi];
        let def = &f.ast.fns[*di];
        let Some(body) = def.body else { continue };
        let block = &f.ast.blocks[body];
        for call in f.ast.calls_in((block.open, block.close + 1)) {
            let callee = f.toks[call.name_tok].text;
            if let Some(&[(cfi, cdi)]) = by_name.get(callee).map(Vec::as_slice) {
                if !reachable.iter().any(|(a, b, _)| (*a, *b) == (cfi, cdi)) {
                    reachable.push((cfi, cdi, root_name.clone()));
                }
            }
        }
    }

    let mut diags = Vec::new();
    for (fi, di, root) in &reachable {
        let f = &files[*fi];
        let def = &f.ast.fns[*di];
        let Some(body) = def.body else { continue };
        if f.input.in_test(def.line) {
            continue;
        }
        let block = &f.ast.blocks[body];
        for call in f.ast.calls_in((block.open, block.close + 1)) {
            let name = f.toks[call.name_tok].text;
            let shape = if call.is_macro && BLOCKING_MACROS.contains(&name) {
                Some(format!("`{name}!`"))
            } else if call.is_method && BLOCKING_METHODS.contains(&name) {
                Some(format!("`.{name}(`"))
            } else if !call.is_method && BLOCKING_CALLS.contains(&name) {
                Some(format!("`{name}(`"))
            } else {
                None
            };
            let Some(shape) = shape else { continue };
            let t = f.toks[call.name_tok];
            if f.input.allowed(t.line - 1, Rule::EventLoop) || f.input.in_test(t.line) {
                continue;
            }
            let via =
                if def.name == *root { String::new() } else { format!(" (called from `{root}`)") };
            diags.push(Diagnostic::spanned(
                f.input.rel,
                t.line,
                t.col,
                t.col + t.text.len(),
                Rule::EventLoop,
                format!(
                    "blocking call {shape} in event-loop-reachable `fn {}`{via} — the evented \
                     engine must never block; move this off-loop or justify with \
                     `modelcheck-allow: event-loop`",
                    def.name
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::FileScope;

    fn scan(src: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", src, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        run_crate(&[CrateFile { input: &input, toks: &toks, ast: &ast }])
    }

    #[test]
    fn sleep_in_annotated_fn_fires() {
        let src = "// modelcheck: event-loop\n\
                   fn event_loop(&mut self) {\n\
                   \x20   std::thread::sleep(d);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("sleep"));
    }

    #[test]
    fn propagates_one_level_to_unique_callees() {
        let src = "// modelcheck: event-loop\n\
                   fn event_loop(&mut self) { self.accept_ready(); }\n\
                   fn accept_ready(&mut self) { let g = self.shards.lock().unwrap(); }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("accept_ready"));
        assert!(d[0].message.contains("called from `event_loop`"), "{d:?}");
    }

    #[test]
    fn ambiguous_names_do_not_propagate() {
        let src = "// modelcheck: event-loop\n\
                   fn event_loop(&mut self) { self.conn.drain(); }\n\
                   impl A { fn drain(&self) { std::thread::sleep(d); } }\n\
                   impl B { fn drain(&self) { std::thread::sleep(d); } }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unannotated_fns_and_read_lock_are_fine() {
        let src = "fn offline() { std::thread::sleep(d); }\n\
                   // modelcheck: event-loop\n\
                   fn on_readable(&mut self) { let g = read_lock(&self.shard); }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn stdio_macros_write_all_and_write_lock_fire() {
        let src = "// modelcheck: event-loop\n\
                   fn process(&mut self) {\n\
                   \x20   eprintln!(\"slow\");\n\
                   \x20   out.write_all(b);\n\
                   \x20   let g = write_lock(&self.shard);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn allow_suppresses_with_justification() {
        let src = "// modelcheck: event-loop\n\
                   fn process(&mut self) {\n\
                   \x20   // modelcheck-allow: event-loop — startup banner, before the loop spins\n\
                   \x20   eprintln!(\"listening\");\n\
                   }\n";
        assert!(scan(src).is_empty());
    }
}
