//! The style pass: the v2 line rules (`no-panic`, `naked-f64`,
//! `lossy-cast`, `no-todo-dbg`, `missing-docs`) re-hosted on the lexed
//! code view, with column spans on every finding.

use super::{contains_token, find_token, token_positions, FileInput};
use crate::{Diagnostic, Rule};

/// A `pub fn` signature accumulated from its first line to the opening
/// `{` or terminating `;` (whichever comes first).
fn signature_text(code_lines: &[String], start: usize) -> String {
    let mut sig = String::new();
    for code in code_lines.iter().skip(start) {
        if let Some(stop) = code.find(['{', ';']) {
            sig.push_str(&code[..stop]);
            break;
        }
        sig.push_str(code);
        sig.push(' ');
    }
    sig
}

const PUB_ITEM_KEYWORDS: [&str; 9] =
    ["fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union"];

/// The item keyword of a public item declaration, if the trimmed code
/// line starts one (`pub fn`, `pub struct`, … — but not `pub use` or
/// `pub(crate)`, which `missing_docs` also skips).
fn pub_item_keyword(trimmed: &str) -> Option<&'static str> {
    let rest = trimmed.strip_prefix("pub ")?;
    let rest = rest.trim_start();
    // `pub async fn`, `pub unsafe fn`, `pub const fn` and stacks thereof.
    let rest = ["async ", "unsafe ", "const ", "extern \"C\" "]
        .iter()
        .fold(rest, |r, q| r.strip_prefix(q).unwrap_or(r).trim_start());
    PUB_ITEM_KEYWORDS
        .iter()
        .find(|kw| rest.strip_prefix(*kw).is_some_and(|after| after.starts_with([' ', '<', '('])))
        .copied()
}

/// True when the item declared on line `i` has a doc comment (or
/// `#[doc…]` attribute) directly above it, attributes skipped. Reads
/// the raw lines: doc comments are blanked in the code view.
fn has_doc_above(raw_lines: &[&str], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if t.starts_with("#[doc") || t.starts_with("///") || t.starts_with("//!") {
            return true;
        }
        if t.starts_with("#[") || t.starts_with("#!") || t.starts_with("//") {
            continue; // attributes and plain comments are trivia to rustdoc
        }
        return false;
    }
    false
}

/// Heuristic: the expression token just before an ` as ` cast is visibly
/// floating-point (a literal like `1.5`, or a `.floor()`-family call).
fn float_evidence_before(code: &str, as_pos: usize) -> bool {
    let before = code[..as_pos].trim_end();
    for suffix in [".floor()", ".ceil()", ".round()", ".trunc()"] {
        if before.ends_with(suffix) {
            return true;
        }
    }
    let token_start = before
        .rfind(|c: char| c.is_whitespace() || c == '(' || c == ',' || c == '=')
        .map_or(0, |p| p + 1);
    let token = &before[token_start..];
    // A float literal: a '.' immediately followed by a digit.
    token.as_bytes().windows(2).any(|w| w[0] == b'.' && w[1].is_ascii_digit())
}

const INT_CAST_TARGETS: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Runs the style rules over the file's code view.
pub fn run(input: &FileInput<'_>) -> Vec<Diagnostic> {
    let scope = input.scope;
    let mut diags = Vec::new();
    let mut push = |line: usize, col: usize, width: usize, rule: Rule, message: String| {
        diags.push(Diagnostic::spanned(
            input.rel,
            line + 1,
            col + 1,
            col + 1 + width,
            rule,
            message,
        ));
    };

    // The scanner must not trip over its own rule patterns when scanning
    // this very file, hence the split literals.
    let todo_pat = concat!("to", "do!");
    let dbg_pat = concat!("d", "bg!");

    for (i, code) in input.code_lines.iter().enumerate() {
        let code = code.as_str();
        if code.trim().is_empty() {
            continue;
        }

        // no-todo-dbg: everywhere, including tests.
        if !input.allowed(i, Rule::NoTodoDbg) {
            for pat in [todo_pat, dbg_pat] {
                if let Some(at) = find_token(code, pat) {
                    push(i, at, pat.len(), Rule::NoTodoDbg, format!("`{pat}` must not ship"));
                }
            }
        }

        if input.test_mask[i] {
            continue;
        }

        if scope.no_panic && !input.allowed(i, Rule::NoPanic) {
            if let Some(at) = code.find(".unwrap()") {
                push(
                    i,
                    at,
                    ".unwrap()".len(),
                    Rule::NoPanic,
                    "`.unwrap()` in model code — return a Result or `.expect` with an \
                     invariant message under an allow"
                        .to_string(),
                );
            }
            if let Some(at) = code.find(".expect(") {
                push(
                    i,
                    at,
                    ".expect(".len(),
                    Rule::NoPanic,
                    "`.expect(` in model code — needs a `modelcheck-allow: no-panic` \
                     stating the invariant"
                        .to_string(),
                );
            }
            if let Some(at) = find_token(code, "panic!") {
                push(
                    i,
                    at,
                    "panic!".len(),
                    Rule::NoPanic,
                    "`panic!` in model code — encode the invariant as an `assert!` or \
                     return an error"
                        .to_string(),
                );
            }
        }

        if scope.naked_f64
            && pub_item_keyword(code.trim_start()) == Some("fn")
            && !input.allowed(i, Rule::NakedF64)
        {
            let sig = signature_text(&input.code_lines, i);
            for ty in ["f64", "f32"] {
                if contains_token(&sig, ty) {
                    let at = find_token(code, ty).unwrap_or(0);
                    push(
                        i,
                        at,
                        ty.len(),
                        Rule::NakedF64,
                        format!(
                            "bare `{ty}` in a public signature — use the `units` \
                             newtypes (Seconds, Prob, Slowdown, …)"
                        ),
                    );
                }
            }
        }

        if scope.lossy_cast && !input.allowed(i, Rule::LossyCast) {
            let target_is = |after: &str, ty: &str| {
                after.starts_with(ty)
                    && !after[ty.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
            };
            for pos in token_positions(code, "as") {
                let after = code[pos + 2..].trim_start();
                if let Some(ty) = ["f64", "f32"].iter().find(|ty| target_is(after, ty)) {
                    push(
                        i,
                        pos,
                        2,
                        Rule::LossyCast,
                        format!(
                            "`as {ty}` cast — route through `units::f64_from_u64` \
                             (exact below 2⁵³) or add an allow with the bound"
                        ),
                    );
                } else if INT_CAST_TARGETS.iter().any(|ty| target_is(after, ty))
                    && float_evidence_before(code, pos)
                {
                    push(
                        i,
                        pos,
                        2,
                        Rule::LossyCast,
                        "float → integer `as` cast truncates — justify with an allow".to_string(),
                    );
                }
            }
        }

        // An out-of-line `pub mod name;` carries its docs as the `//!`
        // header of the module file itself, which rustc accepts — so only
        // inline modules are checked at the declaration site.
        let out_of_line_mod = |kw| kw == "mod" && code.trim_end().ends_with(';');
        if scope.missing_docs
            && pub_item_keyword(code.trim_start()).is_some_and(|kw| !out_of_line_mod(kw))
            && !input.allowed(i, Rule::MissingDocs)
            && !has_doc_above(&input.raw_lines, i)
        {
            let at = code.find("pub").unwrap_or(0);
            push(i, at, 3, Rule::MissingDocs, "public item without a doc comment".to_string());
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileScope;

    fn scan(body: &str) -> Vec<Diagnostic> {
        let (input, mut diags) = FileInput::build("x.rs", body, FileScope::ALL);
        diags.extend(run(&input));
        diags
    }

    #[test]
    fn string_literal_does_not_hide_code_after_fake_comment() {
        let d = scan("fn f() { let u = \"https://h\"; g.unwrap(); }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::NoPanic);
    }

    #[test]
    fn block_comment_prose_is_ignored() {
        assert!(scan("/* g.unwrap() and panic! are prose */ fn f() {}\n").is_empty());
    }

    #[test]
    fn spans_point_at_the_pattern() {
        let d = scan("fn f() { g.unwrap(); }\n");
        assert_eq!((d[0].line, d[0].col, d[0].end_col), (1, 11, 20));
    }
}
