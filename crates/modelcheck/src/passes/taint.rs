//! The `wire-taint` pass: an interprocedural dataflow over `let`
//! bindings and function parameters that tracks values decoded from
//! the wire and flags their use as an allocation size, slice index, or
//! loop bound without a dominating bounds check.
//!
//! v5 runs in two phases over the workspace call graph. **Summarize**
//! computes a [`FnTaint`] summary per function to a fixpoint: which
//! parameters flow into a sink (directly or through further calls),
//! and whether the return value is wire-derived. **Emit** re-walks
//! each function with the final summaries and reports: a tainted value
//! reaching a local sink, a tainted value passed to a callee whose
//! summary sinks that parameter (the finding carries the full
//! `file:line` call-path trace), and a tainted return value flowing
//! out of a resolved call into a caller-side sink.
//!
//! **Labels** — a value's taint is a bitmask: bit 63 ([`WIRE`]) marks
//! wire-derived data, bit `i` marks "derived from parameter `i`".
//! Parameter labels build summaries; only [`WIRE`] produces findings.
//!
//! **Sources** — a binding is tainted when its initializer contains:
//! `.u8(`/`.u16(`/`.u32(`/`.u64(` cursor reads, `from_le_bytes` /
//! `from_be_bytes`, any `recv_frame*` call, a call to a function whose
//! summary marks its return wire-derived; or when it mentions an
//! already-tainted binding (derivation). Plain `.read(` is *not* a
//! source (the kernel bounds the returned count by the buffer length).
//! Composite returns (a struct literal in the return expression) do
//! not taint the return value: taint tracks sizes and counts, not
//! decoded records.
//!
//! **Sinks** — a tainted value reaching `Vec::with_capacity`,
//! `.reserve(`/`.reserve_exact(`/`.resize(`, `vec![x; n]`, a postfix
//! slice index `buf[n]`, a `for _ in 0..n` loop bound, or an argument
//! position a callee's summary sinks.
//!
//! **Sanitizers** — `.min(`/`.clamp(`/`.saturating_*(` in the
//! initializer or at the sink use; `usize::try_from(..)` whose error
//! is consumed locally with a bounded fallback (`.unwrap_or(0)`
//! sanitizes; `.unwrap_or(usize::MAX)` re-introduces an unbounded
//! value and `?` merely propagates the error while the success value
//! flows through unbounded, so both keep the taint); an `if` whose
//! ordering comparison
//! (`<` `<=` `>` `>=`) mentions the value and whose body exits early
//! (`return`/`break`/`continue`) sanitizes it for the rest of the
//! scope; entering a later branch of an `if`/`else if` chain sanitizes
//! values the earlier ordering conditions compared (else-branch
//! domination); `assert!`-family macros with an ordering comparison.
//! Equality comparisons prove nothing about an upper bound and never
//! sanitize. Sanitization closes over derivation links in both
//! directions, and a caller-side check sanitizes the callee: an
//! argument cleared by a dominating guard propagates no taint.
//!
//! Known limits (by design, to stay zero-dependency and fast): only
//! simple `let name = …` bindings and named parameters are tracked —
//! values bound through match/`if let` patterns or struct fields are
//! not followed, comparison *direction* is not checked, and calls only
//! resolve through the unique-name rule of [`crate::graph`].

use super::FileInput;
use crate::ast::{Ast, BlockId, ExprId, ExprKind, Span, StmtKind};
use crate::graph::{split_args, CallGraph, FileCtx, NodeId};
use crate::lexer::{TokKind, Token};
use crate::resolve::{block_has_early_exit, has_ordering_cmp, span_mentions};
use crate::{Diagnostic, Rule};
use std::collections::{HashMap, HashSet};

/// Method-call names whose result is wire-derived.
const SOURCE_METHODS: [&str; 4] = ["u8", "u16", "u32", "u64"];
/// Free/associated call names whose result is wire-derived.
const SOURCE_CALLS: [&str; 2] = ["from_le_bytes", "from_be_bytes"];
/// Method sinks that allocate by the argument amount.
const ALLOC_METHODS: [&str; 3] = ["reserve", "reserve_exact", "resize"];

/// The label bit marking wire-derived data.
pub const WIRE: u64 = 1 << 63;
/// Parameter labels use bits `0..PARAM_BITS`; later parameters are
/// untracked (none of the workspace's functions come close).
const PARAM_BITS: usize = 62;
/// Fixpoint round cap; summaries are monotone so this is a backstop,
/// not a tuning knob (the workspace converges in a handful of rounds).
const MAX_ROUNDS: usize = 10;

/// The per-function taint summary.
#[derive(Debug, Clone, Default)]
pub struct FnTaint {
    /// Labels carried by the function's return value.
    pub ret: u64,
    /// Parameters that reach a sink, with the path to it.
    pub sinks: Vec<ParamSink>,
}

/// One parameter-to-sink flow in a function's summary.
#[derive(Debug, Clone)]
pub struct ParamSink {
    /// Parameter index (receiver excluded, matching argument order).
    pub param: usize,
    /// Sink kind: `alloc(<name>)`, `index`, or `loop-bound`.
    pub what: String,
    /// `file:line` steps from this function's sink (or forwarding call
    /// site) down to the final sink.
    pub trace: Vec<String>,
}

/// Renders a label mask for `--dump-summaries` (`-` when empty).
pub fn render_labels(mask: u64, params: &[String]) -> String {
    if mask == 0 {
        return "-".to_string();
    }
    let mut parts = Vec::new();
    if mask & WIRE != 0 {
        parts.push("wire".to_string());
    }
    for (i, p) in params.iter().enumerate().take(PARAM_BITS) {
        if mask & (1 << i) != 0 {
            parts.push(format!("p{i}({p})"));
        }
    }
    parts.join("|")
}

/// Computes the per-function summaries to a fixpoint (Jacobi rounds
/// over a snapshot; summaries only grow, so the iteration converges).
pub fn summarize(files: &[FileCtx<'_, '_>], g: &CallGraph) -> Vec<FnTaint> {
    let mut sums: Vec<FnTaint> = vec![FnTaint::default(); g.nodes.len()];
    for _ in 0..MAX_ROUNDS {
        let prev = sums.clone();
        let mut changed = false;
        for (id, entry) in sums.iter_mut().enumerate() {
            let mut w = Walk::new(files, g, &prev, id, false);
            w.run();
            if entry.ret | w.out.ret != entry.ret {
                entry.ret |= w.out.ret;
                changed = true;
            }
            for s in w.out.sinks {
                if !entry.sinks.iter().any(|e| e.param == s.param && e.what == s.what) {
                    entry.sinks.push(s);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for s in &mut sums {
        s.sinks.sort_by(|a, b| (a.param, a.what.as_str()).cmp(&(b.param, b.what.as_str())));
    }
    sums
}

/// Re-walks every function in a `wire-taint`-scoped file with the
/// final summaries and emits the findings.
pub fn emit(files: &[FileCtx<'_, '_>], g: &CallGraph, sums: &[FnTaint]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (id, n) in g.nodes.iter().enumerate() {
        let f = &files[n.file];
        if !f.input.scope.wire_taint || f.input.in_test(n.line) {
            continue;
        }
        let mut w = Walk::new(files, g, sums, id, true);
        w.run();
        diags.append(&mut w.diags);
    }
    diags
}

/// Human phrasing for a [`ParamSink::what`] sink kind.
fn describe(what: &str) -> String {
    if let Some(inner) = what.strip_prefix("alloc(").and_then(|s| s.strip_suffix(')')) {
        format!("the allocation size of `{inner}`")
    } else if what == "index" {
        "a slice index".to_string()
    } else {
        "a loop bound".to_string()
    }
}

/// One walk over one function body: tracks label masks per binding and
/// routes sink hits to diagnostics (emit phase) or the summary
/// (summarize phase).
struct Walk<'w, 't, 'a> {
    files: &'w [FileCtx<'t, 'a>],
    g: &'w CallGraph,
    sums: &'w [FnTaint],
    node: NodeId,
    /// Current label mask per live binding name.
    labels: HashMap<String, u64>,
    /// Derivation links: binding → labeled names its initializer read.
    deps: HashMap<String, Vec<String>>,
    /// Whether findings are emitted (the emit phase, outside tests).
    emit: bool,
    /// (line, col) pairs already reported, to dedup branch re-walks.
    seen: HashSet<(usize, usize)>,
    diags: Vec<Diagnostic>,
    /// The summary collected by this walk (summarize phase).
    out: FnTaint,
}

impl<'w, 't, 'a> Walk<'w, 't, 'a> {
    fn new(
        files: &'w [FileCtx<'t, 'a>],
        g: &'w CallGraph,
        sums: &'w [FnTaint],
        node: NodeId,
        emit: bool,
    ) -> Self {
        let mut labels = HashMap::new();
        for (i, p) in g.nodes[node].params.iter().enumerate().take(PARAM_BITS) {
            if !p.is_empty() {
                labels.insert(p.clone(), 1u64 << i);
            }
        }
        Walk {
            files,
            g,
            sums,
            node,
            labels,
            deps: HashMap::new(),
            emit,
            seen: HashSet::new(),
            diags: Vec::new(),
            out: FnTaint::default(),
        }
    }

    fn file(&self) -> &'w FileCtx<'t, 'a> {
        &self.files[self.g.nodes[self.node].file]
    }

    fn toks(&self) -> &'t [&'t Token<'a>] {
        self.file().toks
    }

    fn ast(&self) -> &'t Ast {
        self.file().ast
    }

    fn input(&self) -> &'t FileInput<'a> {
        self.file().input
    }

    fn site(&self, tok: usize) -> String {
        format!("{}:{}", self.input().rel, self.toks()[tok].line)
    }

    fn run(&mut self) {
        let body = self.g.nodes[self.node].body;
        self.walk_block(body, true);
    }

    fn walk_block(&mut self, block: BlockId, fn_body: bool) {
        let entry_labels = self.labels.clone();
        let entry_deps = self.deps.clone();
        let stmts = self.ast().blocks[block].stmts.clone();
        let last = stmts.len().saturating_sub(1);
        for (si, stmt) in stmts.iter().enumerate() {
            match &stmt.kind {
                StmtKind::Let { name, init } => {
                    if let Some(init) = *init {
                        let span = self.ast().exprs[init].span;
                        self.check_sinks(span);
                        self.walk_expr_blocks(init);
                        self.apply_assert_sanitizers(span);
                        if let Some(name) = name {
                            self.bind(name, span);
                        }
                    } else if let Some(name) = name {
                        self.labels.remove(name);
                    }
                }
                StmtKind::Expr(e) => {
                    let span = self.ast().exprs[*e].span;
                    if self.toks()[span.0].text == "return" {
                        self.out.ret |= self.ret_labels_of((span.0 + 1, span.1));
                    } else if fn_body
                        && si == last
                        && self.toks().get(span.1).is_none_or(|t| t.text != ";")
                    {
                        self.out.ret |= self.ret_labels_of(span);
                    }
                    self.walk_expr(*e);
                }
                StmtKind::Item => {}
            }
        }
        // Bindings introduced here go out of scope, and `let` can only
        // shadow (never rebind) an outer name, so exiting the block
        // simply restores the entry state.
        self.labels = entry_labels;
        self.deps = entry_deps;
    }

    /// Records the binding produced by `let name = <init span>;`.
    fn bind(&mut self, name: &str, init: Span) {
        if self.sanitized_at_use(init) {
            self.labels.remove(name);
            self.deps.remove(name);
            return;
        }
        let mask = self.labels_of(init);
        if mask == 0 {
            self.labels.remove(name);
            self.deps.remove(name);
            return;
        }
        let mut sources: Vec<String> = Vec::new();
        for t in &self.toks()[init.0..init.1.min(self.toks().len())] {
            if t.kind == TokKind::Ident && self.labels.contains_key(t.text) {
                sources.push(t.text.to_string());
            }
        }
        sources.sort();
        sources.dedup();
        sources.retain(|s| s != name); // self-rebind keeps taint, not a link
        self.labels.insert(name.to_string(), mask);
        self.deps.insert(name.to_string(), sources);
    }

    /// The label mask carried by `span`: labeled bindings it mentions,
    /// [`WIRE`] when it contains a wire-read source, plus whatever the
    /// summaries say resolved calls in it return.
    fn labels_of(&self, span: Span) -> u64 {
        let mut mask = 0u64;
        for t in &self.toks()[span.0..span.1.min(self.toks().len())] {
            if t.kind == TokKind::Ident {
                if let Some(m) = self.labels.get(t.text) {
                    mask |= m;
                }
            }
        }
        if self.span_has_source(span) {
            mask |= WIRE;
        }
        for c in self.ast().calls_in(span) {
            if c.is_macro {
                continue;
            }
            let Some(callee) = self.g.callee_of(self.node, c.name_tok) else { continue };
            let ret = self.sums[callee].ret;
            if ret == 0 {
                continue;
            }
            if ret & WIRE != 0 {
                mask |= WIRE;
            }
            // A callee return labeled with its parameter `j` carries
            // whatever the argument in position `j` carries here.
            if ret & !WIRE != 0 {
                let args = split_args(self.ast(), self.toks(), c.args);
                for (j, a) in args.iter().enumerate().take(PARAM_BITS) {
                    if ret & (1 << j) != 0 && !self.sanitized_at_use(*a) {
                        mask |= self.labels_of(*a);
                    }
                }
            }
        }
        mask
    }

    /// [`labels_of`] for return positions: a composite return (struct
    /// literal, block-valued expression) does not taint the return —
    /// taint tracks sizes and counts, not decoded records.
    fn ret_labels_of(&self, span: Span) -> u64 {
        let end = span.1.min(self.toks().len());
        if (span.0..end).any(|k| self.toks()[k].text == "{") {
            return 0;
        }
        if self.sanitized_at_use(span) {
            return 0;
        }
        self.labels_of(span)
    }

    /// True when the span contains a wire-read source call.
    fn span_has_source(&self, span: Span) -> bool {
        self.ast().calls_in(span).iter().any(|c| {
            let name = self.toks()[c.name_tok].text;
            (c.is_method && SOURCE_METHODS.contains(&name))
                || SOURCE_CALLS.contains(&name)
                || name.starts_with("recv_frame")
        })
    }

    /// True when the span caps the value right where it is used:
    /// `.min(`/`.clamp(`/`.saturating_*(`, or a `usize::try_from(..)`
    /// whose error fallback is bounded.
    fn sanitized_at_use(&self, span: Span) -> bool {
        self.ast().calls_in(span).iter().any(|c| {
            let name = self.toks()[c.name_tok].text;
            if c.is_method && (matches!(name, "min" | "clamp") || name.starts_with("saturating_")) {
                return true;
            }
            !c.is_method && !c.is_macro && name == "try_from" && self.try_from_bounded(c.close)
        })
    }

    /// `usize::try_from(x)` sanitizes only when the error is *consumed
    /// locally* with a bounded fallback — `.unwrap_or(0)`,
    /// `.unwrap_or_default()` — because the operator chose a cap for
    /// the bad case and (by writing the fallback) audited the good one.
    /// `?`/`.map_err(…)?` merely *propagate* the error: on success the
    /// wire value passes through unchanged and unbounded, so the taint
    /// stays. `.unwrap_or(…MAX…)` re-introduces an unbounded value and
    /// keeps the taint too.
    fn try_from_bounded(&self, close: usize) -> bool {
        let toks = self.toks();
        let k = close + 1;
        if !(toks.get(k).is_some_and(|t| t.text == ".")
            && toks.get(k + 1).is_some_and(|t| t.text.starts_with("unwrap_or"))
            && toks.get(k + 2).is_some_and(|t| t.text == "("))
        {
            return false;
        }
        let close = self.ast().pairs.get(k + 2).copied().unwrap_or(usize::MAX);
        if close != usize::MAX {
            for t in &toks[k + 3..close.min(toks.len())] {
                if t.kind == TokKind::Ident && t.text == "MAX" {
                    return false;
                }
            }
        }
        true
    }

    /// Clears `name` and everything linked to it through derivation,
    /// in both directions (checking `need = n * 8` also clears `n`).
    fn sanitize_closure(&mut self, name: &str) {
        let mut work = vec![name.to_string()];
        while let Some(n) = work.pop() {
            if self.labels.remove(&n).is_none() {
                continue;
            }
            if let Some(srcs) = self.deps.get(&n) {
                work.extend(srcs.iter().cloned());
            }
            for (k, srcs) in &self.deps {
                if srcs.iter().any(|s| s == &n) {
                    work.push(k.clone());
                }
            }
        }
    }

    /// The labeled names an ordering comparison in `span` mentions.
    fn checked_names(&self, span: Span) -> Vec<String> {
        if !has_ordering_cmp(self.toks(), span) {
            return Vec::new();
        }
        self.labels.keys().filter(|n| span_mentions(self.toks(), span, n)).cloned().collect()
    }

    /// `assert!`/`debug_assert!` with an ordering comparison sanitizes
    /// the names it mentions for the rest of the scope.
    fn apply_assert_sanitizers(&mut self, span: Span) {
        let mut cleared = Vec::new();
        for c in self.ast().calls_in(span) {
            if c.is_macro && matches!(self.toks()[c.name_tok].text, "assert" | "debug_assert") {
                cleared.extend(self.checked_names(c.args));
            }
        }
        for n in cleared {
            self.sanitize_closure(&n);
        }
    }

    fn walk_expr(&mut self, e: ExprId) {
        let expr = self.ast().exprs[e].clone();
        match &expr.kind {
            ExprKind::If { conds } => {
                for c in conds {
                    self.check_sinks(*c);
                }
                for (i, b) in expr.blocks.iter().enumerate() {
                    // Entering branch i: every ordering comparison in
                    // the chain up to and including cond i dominates it
                    // — an earlier one was false, the current one true;
                    // either way the value was checked against a bound.
                    let saved_labels = self.labels.clone();
                    let saved_deps = self.deps.clone();
                    let upto = (i + 1).min(conds.len());
                    let mut cleared = Vec::new();
                    for c in &conds[..upto] {
                        cleared.extend(self.checked_names(*c));
                    }
                    for n in cleared {
                        self.sanitize_closure(&n);
                    }
                    self.walk_block(*b, false);
                    self.labels = saved_labels;
                    self.deps = saved_deps;
                }
                // After the statement: a guard branch that exits early
                // leaves its checked names sanitized on the
                // fall-through.
                for (i, c) in conds.iter().enumerate() {
                    let Some(&b) = expr.blocks.get(i) else { continue };
                    if block_has_early_exit(self.toks(), &self.ast().blocks[b]) {
                        for n in self.checked_names(*c) {
                            self.sanitize_closure(&n);
                        }
                    }
                }
            }
            ExprKind::Match { head, arms } => {
                self.check_sinks(*head);
                for arm in arms {
                    let saved_labels = self.labels.clone();
                    let saved_deps = self.deps.clone();
                    self.walk_expr(arm.body);
                    self.labels = saved_labels;
                    self.deps = saved_deps;
                }
            }
            ExprKind::For { iter } => {
                self.check_loop_bound(*iter);
                self.check_sinks(*iter);
                for b in &expr.blocks {
                    self.walk_block(*b, false);
                }
            }
            ExprKind::While { cond } => {
                // A `while` condition is neither a sink nor a
                // sanitizer: it is re-evaluated, so it neither
                // allocates once nor proves a bound for code after the
                // loop.
                self.check_sinks(*cond);
                for b in &expr.blocks {
                    self.walk_block(*b, false);
                }
            }
            ExprKind::Plain => {
                self.check_sinks(expr.span);
                self.apply_assert_sanitizers(expr.span);
                for b in &expr.blocks {
                    self.walk_block(*b, false);
                }
            }
        }
    }

    /// Walks only the nested blocks of an expression (used for `let`
    /// initializers, whose span is sink-checked separately).
    fn walk_expr_blocks(&mut self, e: ExprId) {
        let blocks = self.ast().exprs[e].blocks.clone();
        for b in blocks {
            self.walk_block(b, false);
        }
    }

    /// The first [`WIRE`]-labeled name `span` mentions, if any.
    fn wire_name_in(&self, span: Span) -> Option<(usize, String)> {
        for k in span.0..span.1.min(self.toks().len()) {
            let t = self.toks()[k];
            if t.kind == TokKind::Ident && self.labels.get(t.text).is_some_and(|m| m & WIRE != 0) {
                return Some((k, t.text.to_string()));
            }
        }
        None
    }

    /// Routes a labeled value reaching a sink: [`WIRE`] emits a
    /// diagnostic (emit phase), parameter labels are recorded in the
    /// summary. `tail` is the callee-side remainder of the call path.
    fn sink_hit(&mut self, at: usize, value: Option<Span>, mask: u64, what: &str, tail: &[String]) {
        if mask == 0 {
            return;
        }
        let t = self.toks()[at];
        // An allow on the sink line suppresses the finding *and* the
        // summary entry: the justification covers the flow, so callers
        // must not re-report it.
        if self.input().allowed(t.line - 1, Rule::WireTaint) {
            return;
        }
        let mut trace = vec![self.site(at)];
        trace.extend(tail.iter().cloned());
        if mask & WIRE != 0 {
            let name = value
                .and_then(|s| self.wire_name_in(s))
                .map_or_else(|| "<wire read>".to_string(), |(_, n)| n);
            self.report(at, &name, what, &trace);
        }
        let params = self.g.nodes[self.node].params.len().min(PARAM_BITS);
        for i in 0..params {
            if mask & (1 << i) != 0
                && !self.out.sinks.iter().any(|s| s.param == i && s.what == what)
            {
                self.out.sinks.push(ParamSink {
                    param: i,
                    what: what.to_string(),
                    trace: trace.clone(),
                });
            }
        }
    }

    fn report(&mut self, at: usize, name: &str, what: &str, trace: &[String]) {
        if !self.emit {
            return;
        }
        let t = self.toks()[at];
        if !self.seen.insert((t.line, t.col)) {
            return;
        }
        let sink = describe(what);
        let message = if trace.len() > 1 {
            format!(
                "wire-tainted value `{name}` flows into {sink} through the call path \
                 {} without a dominating bounds check — cap it before the call (`.min(…)`, \
                 compare against a limit with an early return, or justify with \
                 `modelcheck-allow: wire-taint`)",
                trace.join(" -> ")
            )
        } else {
            format!(
                "wire-tainted value `{name}` used as {sink} without a dominating bounds check — \
                 cap it first (`.min(…)`, compare against a `MAX_*`/`max_frame_bytes` limit with \
                 an early return, or justify with `modelcheck-allow: wire-taint`)"
            )
        };
        self.diags.push(Diagnostic::spanned(
            self.input().rel,
            t.line,
            t.col,
            t.col + t.text.len(),
            Rule::WireTaint,
            message,
        ));
    }

    /// Allocation, index, `vec![…; n]`, and callee-summary sinks
    /// inside `span`.
    fn check_sinks(&mut self, span: Span) {
        let calls: Vec<_> = self.ast().calls_in(span).to_vec();
        for c in &calls {
            let name = self.toks()[c.name_tok].text;
            let is_alloc = (name == "with_capacity" && !c.is_method)
                || (c.is_method && ALLOC_METHODS.contains(&name))
                || (c.is_macro && name == "vec" && self.args_have_repeat_semi(c.args));
            if is_alloc && !self.sanitized_at_use(c.args) {
                let mask = self.labels_of(c.args);
                self.sink_hit(c.name_tok, Some(c.args), mask, &format!("alloc({name})"), &[]);
            }
            // Interprocedural step: a labeled value passed in a
            // position the callee's summary sinks.
            if c.is_macro {
                continue;
            }
            let Some(callee) = self.g.callee_of(self.node, c.name_tok) else { continue };
            if self.sums[callee].sinks.is_empty() {
                continue;
            }
            let args = split_args(self.ast(), self.toks(), c.args);
            let callee_sinks = self.sums[callee].sinks.clone();
            for s in &callee_sinks {
                let Some(&a) = args.get(s.param) else { continue };
                if self.sanitized_at_use(a) {
                    continue;
                }
                let mask = self.labels_of(a);
                self.sink_hit(c.name_tok, Some(a), mask, &s.what, &s.trace);
            }
        }
        // Postfix slice indexes: `expr[…]` where the bracket follows a
        // value position (identifier, `)`, `]`, or `?`).
        let end = span.1.min(self.toks().len());
        for k in span.0..end {
            if self.toks()[k].text != "[" || k == 0 {
                continue;
            }
            let prev = self.toks()[k - 1];
            let value_pos = prev.kind == TokKind::Ident && prev.text != "return"
                || matches!(prev.text, ")" | "]" | "?");
            if !value_pos {
                continue;
            }
            let close = self.ast().pairs.get(k).copied().unwrap_or(usize::MAX);
            if close == usize::MAX || close > end {
                continue;
            }
            let interior = (k + 1, close);
            if self.sanitized_at_use(interior) {
                continue;
            }
            let mask = self.labels_of(interior);
            let at = self.wire_name_in(interior).map_or(k, |(at, _)| at);
            self.sink_hit(at, Some(interior), mask, "index", &[]);
        }
    }

    /// `for _ in 0..n` with labeled `n`: a wire-controlled loop bound.
    fn check_loop_bound(&mut self, iter: Span) {
        let end = iter.1.min(self.toks().len());
        let has_range = (iter.0..end.saturating_sub(1)).any(|k| {
            self.toks()[k].text == "."
                && self.toks()[k + 1].text == "."
                && self.toks()[k].end == self.toks()[k + 1].start
        });
        if !has_range || self.sanitized_at_use(iter) {
            return;
        }
        let mask = self.labels_of(iter);
        let at = self.wire_name_in(iter).map_or(iter.0, |(at, _)| at);
        self.sink_hit(at, Some(iter), mask, "loop-bound", &[]);
    }

    /// True for `vec![elem; count]` (the repeat form, which allocates
    /// `count` elements) as opposed to `vec![a, b, c]`.
    fn args_have_repeat_semi(&self, args: Span) -> bool {
        let mut k = args.0;
        let end = args.1.min(self.toks().len());
        while k < end {
            match self.toks()[k].text {
                "(" | "[" | "{" => {
                    let close = self.ast().pairs.get(k).copied().unwrap_or(usize::MAX);
                    if close == usize::MAX || close >= end {
                        return false;
                    }
                    k = close + 1;
                }
                ";" => return true,
                _ => k += 1,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::FileScope;

    fn scan(body: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", body, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        let files = [FileCtx { input: &input, toks: &toks, ast: &ast, crate_dir: None }];
        let g = CallGraph::build(&files);
        let sums = summarize(&files, &g);
        emit(&files, &g, &sums)
    }

    #[test]
    fn unguarded_with_capacity_from_cursor_read_fires() {
        let src = "fn f(c: &mut Cur) -> R {\n\
                   \x20   let n = c.u32()? as usize;\n\
                   \x20   let v = Vec::with_capacity(n);\n\
                   \x20   Ok(v)\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("with_capacity"), "{d:?}");
    }

    #[test]
    fn resize_of_recv_frame_len_fires() {
        let src = "fn f(s: &mut S, body: &mut Vec<u8>) {\n\
                   \x20   let len = recv_frame_len(s);\n\
                   \x20   body.resize(len, 0);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("resize"));
    }

    #[test]
    fn min_at_use_and_in_init_sanitize() {
        let src = "fn f(c: &mut Cur) {\n\
                   \x20   let n = c.u32()? as usize;\n\
                   \x20   let v = Vec::with_capacity(n.min(64));\n\
                   \x20   let m = n.min(MAX_MACHINES);\n\
                   \x20   let w = Vec::with_capacity(m);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn early_return_guard_sanitizes_via_derivation_links() {
        // The `Cur::matrix` shape: the *product* is checked, which must
        // clear the underlying count for the later loop bound.
        let src = "fn f(c: &mut Cur) -> R {\n\
                   \x20   let n = c.u32()? as usize;\n\
                   \x20   let need = n * 8;\n\
                   \x20   if need > c.remaining() { return Err(e()); }\n\
                   \x20   for i in 0..n { touch(i); }\n\
                   \x20   Ok(())\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unguarded_loop_bound_and_index_fire() {
        let src = "fn f(c: &mut Cur, buf: &[u8]) {\n\
                   \x20   let n = u32::from_le_bytes(four(buf)) as usize;\n\
                   \x20   for i in 0..n { touch(i); }\n\
                   \x20   let b = buf[n];\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("loop bound"));
        assert!(d[1].message.contains("slice index"));
    }

    #[test]
    fn else_branch_domination_sanitizes() {
        // The `server.rs` frame loop shape.
        let src = "fn f(c: &mut Cur, body: &mut Vec<u8>, max: usize) {\n\
                   \x20   let len = c.u32()? as usize;\n\
                   \x20   if len == 0 { tiny(); } else if len > max { huge(); } else {\n\
                   \x20       body.resize(len, 0);\n\
                   \x20   }\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn equality_check_does_not_sanitize() {
        let src = "fn f(c: &mut Cur, body: &mut Vec<u8>) {\n\
                   \x20   let len = c.u32()? as usize;\n\
                   \x20   if len == 0 { return; }\n\
                   \x20   body.resize(len, 0);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn vec_repeat_macro_is_a_sink_but_list_form_is_not() {
        let src = "fn f(c: &mut Cur) {\n\
                   \x20   let n = c.u16()? as usize;\n\
                   \x20   let a = vec![0u8; n];\n\
                   \x20   let b = vec![n, n, n];\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("vec"));
    }

    #[test]
    fn assert_sanitizes_and_allow_suppresses() {
        let ok = "fn f(c: &mut Cur) {\n\
                  \x20   let n = c.u32()? as usize;\n\
                  \x20   assert!(n <= CAP);\n\
                  \x20   let v = Vec::with_capacity(n);\n\
                  }\n";
        assert!(scan(ok).is_empty());
        let allowed = "fn f(c: &mut Cur) {\n\
                       \x20   let n = c.u32()? as usize;\n\
                       \x20   // modelcheck-allow: wire-taint — n is operator-controlled config\n\
                       \x20   let v = Vec::with_capacity(n);\n\
                       }\n";
        assert!(scan(allowed).is_empty());
    }

    #[test]
    fn plain_read_is_not_a_source_and_tests_are_exempt() {
        let reads = "fn f(s: &mut S, scratch: &mut [u8]) {\n\
                     \x20   let n = s.read(scratch).unwrap();\n\
                     \x20   let v = Vec::with_capacity(n);\n\
                     }\n";
        assert!(scan(reads).is_empty());
        let tested = "#[cfg(test)]\nmod t {\n\
                      fn f(c: &mut Cur) { let n = c.u32().unwrap(); let v = vec![0; n]; }\n\
                      }\n";
        assert!(scan(tested).is_empty());
    }

    #[test]
    fn tainted_length_through_helper_flags_the_call_chain() {
        let src = "fn read_frame(c: &mut Cur) -> R {\n\
                   \x20   let len = c.u32()? as usize;\n\
                   \x20   let buf = alloc_buf(len);\n\
                   \x20   Ok(buf)\n\
                   }\n\
                   fn alloc_buf(n: usize) -> Vec<u8> {\n\
                   \x20   Vec::with_capacity(n)\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3, "reported at the call site, not the helper");
        assert!(d[0].message.contains("call path"), "{d:?}");
        assert!(d[0].message.contains("x.rs:3 -> x.rs:7"), "{d:?}");
    }

    #[test]
    fn caller_side_guard_sanitizes_the_callee() {
        let src = "fn read_frame(c: &mut Cur) -> R {\n\
                   \x20   let len = c.u32()? as usize;\n\
                   \x20   if len > MAX_FRAME { return Err(e()); }\n\
                   \x20   let buf = alloc_buf(len);\n\
                   \x20   Ok(buf)\n\
                   }\n\
                   fn alloc_buf(n: usize) -> Vec<u8> {\n\
                   \x20   Vec::with_capacity(n)\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn taint_propagates_through_helper_returns() {
        let src = "fn frame_len(c: &mut Cur) -> usize {\n\
                   \x20   c.u32().unwrap_or(0) as usize\n\
                   }\n\
                   fn f(c: &mut Cur) {\n\
                   \x20   let n = frame_len(c);\n\
                   \x20   let v = Vec::with_capacity(n);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6, "{d:?}");
    }

    #[test]
    fn composite_returns_do_not_taint() {
        let src = "fn decode(c: &mut Cur) -> Req {\n\
                   \x20   let n = c.u32().unwrap_or(0) as usize;\n\
                   \x20   Req { machines: n.min(MAX), raw: n.min(MAX) }\n\
                   }\n\
                   fn f(c: &mut Cur) {\n\
                   \x20   let req = decode(c);\n\
                   \x20   let v = Vec::with_capacity(req.machines);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn two_level_chains_trace_to_the_final_sink() {
        let src = "fn top(c: &mut Cur) {\n\
                   \x20   let len = c.u32().unwrap_or(0) as usize;\n\
                   \x20   mid(len);\n\
                   }\n\
                   fn mid(n: usize) { bottom(n); }\n\
                   fn bottom(m: usize) { let v = vec![0u8; m]; }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("x.rs:3 -> x.rs:5 -> x.rs:6"), "{d:?}");
    }

    #[test]
    fn try_from_with_bounded_fallback_sanitizes() {
        let src = "fn f(c: &mut Cur) {\n\
                   \x20   let n = usize::try_from(c.u64().unwrap()).unwrap_or(0);\n\
                   \x20   let v = Vec::with_capacity(n);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn try_from_with_max_fallback_stays_tainted() {
        let src = "fn f(c: &mut Cur) {\n\
                   \x20   let n = usize::try_from(c.u64().unwrap()).unwrap_or(usize::MAX);\n\
                   \x20   let v = Vec::with_capacity(n);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn saturating_bounds_sanitize() {
        let src = "fn f(c: &mut Cur, budget: usize) {\n\
                   \x20   let n = c.u32().unwrap_or(0) as usize;\n\
                   \x20   let m = budget.saturating_sub(n);\n\
                   \x20   let v = Vec::with_capacity(m);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn allow_on_the_helper_sink_covers_its_callers() {
        let src = "fn top(c: &mut Cur) {\n\
                   \x20   let len = c.u32().unwrap_or(0) as usize;\n\
                   \x20   grow(len);\n\
                   }\n\
                   fn grow(n: usize) {\n\
                   \x20   // modelcheck-allow: wire-taint — n is capped by the transport layer\n\
                   \x20   let v = Vec::with_capacity(n);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }
}
