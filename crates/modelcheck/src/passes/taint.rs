//! The `wire-taint` pass: a per-function dataflow over `let` bindings
//! that tracks values decoded from the wire and flags their use as an
//! allocation size, slice index, or loop bound without a dominating
//! bounds check.
//!
//! **Sources** — a binding is tainted when its initializer contains:
//! `.u8(`/`.u16(`/`.u32(`/`.u64(` cursor reads, `from_le_bytes` /
//! `from_be_bytes`, or any `recv_frame*` call; or when it mentions an
//! already-tainted binding (derivation). Plain `.read(` is *not* a
//! source (the kernel bounds the returned count by the buffer length),
//! and neither are the repo's own sanitizing helpers (`Cur::count`
//! proves its result against the remaining frame before returning).
//!
//! **Sinks** — a tainted value reaching `Vec::with_capacity`,
//! `.reserve(`/`.reserve_exact(`/`.resize(`, `vec![x; n]`, a postfix
//! slice index `buf[n]`, or a `for _ in 0..n` loop bound.
//!
//! **Sanitizers** — `.min(`/`.clamp(` in the initializer or at the
//! sink use; an `if` whose ordering comparison (`<` `<=` `>` `>=`)
//! mentions the value and whose body exits early (`return`/`break`/
//! `continue`) sanitizes it for the rest of the scope; entering a
//! later branch of an `if`/`else if` chain sanitizes values the
//! earlier ordering conditions compared (else-branch domination);
//! `assert!`-family macros with an ordering comparison. Equality
//! comparisons prove nothing about an upper bound and never sanitize.
//! Sanitization closes over derivation links in both directions:
//! checking `need = n * 8` against the frame budget clears `n` too.
//!
//! Known limits (by design, to stay zero-dependency and fast): only
//! simple `let name = …` bindings are tracked — values bound through
//! match/`if let` patterns, struct fields, or function parameters are
//! not followed, and comparison *direction* is not checked.

use super::FileInput;
use crate::ast::{Ast, ExprId, ExprKind, Span, StmtKind};
use crate::lexer::{TokKind, Token};
use crate::resolve::{block_has_early_exit, has_ordering_cmp, span_mentions};
use crate::{Diagnostic, Rule};
use std::collections::{HashMap, HashSet};

/// Method-call names whose result is wire-derived.
const SOURCE_METHODS: [&str; 4] = ["u8", "u16", "u32", "u64"];
/// Free/associated call names whose result is wire-derived.
const SOURCE_CALLS: [&str; 2] = ["from_le_bytes", "from_be_bytes"];
/// Method sinks that allocate by the argument amount.
const ALLOC_METHODS: [&str; 3] = ["reserve", "reserve_exact", "resize"];

struct Ctx<'t, 'a, 'i> {
    input: &'i FileInput<'a>,
    toks: &'t [&'t Token<'a>],
    ast: &'t Ast,
    /// Currently-tainted binding names.
    tainted: HashSet<String>,
    /// Derivation links: binding → tainted names its initializer read.
    deps: HashMap<String, Vec<String>>,
    /// Whether findings are emitted (false inside `#[cfg(test)]`).
    emit: bool,
    /// (line, col) pairs already reported, to dedup branch re-walks.
    seen: HashSet<(usize, usize)>,
    diags: Vec<Diagnostic>,
}

/// Runs the wire-taint rule over every function body.
pub fn run(input: &FileInput<'_>, toks: &[&Token<'_>], ast: &Ast) -> Vec<Diagnostic> {
    if !input.scope.wire_taint {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for f in &ast.fns {
        let Some(body) = f.body else { continue };
        let mut ctx = Ctx {
            input,
            toks,
            ast,
            tainted: HashSet::new(),
            deps: HashMap::new(),
            emit: !input.in_test(f.line),
            seen: HashSet::new(),
            diags: Vec::new(),
        };
        walk_block(&mut ctx, body);
        diags.append(&mut ctx.diags);
    }
    diags
}

fn walk_block(ctx: &mut Ctx<'_, '_, '_>, block: usize) {
    let entry_tainted = ctx.tainted.clone();
    let entry_deps = ctx.deps.clone();
    let stmts = ctx.ast.blocks[block].stmts.clone();
    for stmt in &stmts {
        match &stmt.kind {
            StmtKind::Let { name, init } => {
                if let Some(init) = *init {
                    let span = ctx.ast.exprs[init].span;
                    check_sinks(ctx, span);
                    walk_expr_blocks(ctx, init);
                    apply_assert_sanitizers(ctx, span);
                    if let Some(name) = name {
                        bind(ctx, name, span);
                    }
                } else if let Some(name) = name {
                    ctx.tainted.remove(name);
                }
            }
            StmtKind::Expr(e) => walk_expr(ctx, *e),
            StmtKind::Item => {}
        }
    }
    // Bindings introduced here go out of scope, and `let` can only
    // shadow (never rebind) an outer name, so exiting the block simply
    // restores the entry state.
    ctx.tainted = entry_tainted;
    ctx.deps = entry_deps;
}

/// Records the binding produced by `let name = <init span>;`.
fn bind(ctx: &mut Ctx<'_, '_, '_>, name: &str, init: Span) {
    if sanitized_at_use(ctx, init) {
        ctx.tainted.remove(name);
        ctx.deps.remove(name);
        return;
    }
    let mut sources: Vec<String> = Vec::new();
    for t in &ctx.toks[init.0..init.1.min(ctx.toks.len())] {
        if t.kind == TokKind::Ident && ctx.tainted.contains(t.text) {
            sources.push(t.text.to_string());
        }
    }
    let is_source = span_has_source(ctx, init);
    if is_source || !sources.is_empty() {
        ctx.tainted.insert(name.to_string());
        sources.sort();
        sources.dedup();
        sources.retain(|s| s != name); // self-rebind keeps taint, not a link
        ctx.deps.insert(name.to_string(), sources);
    } else {
        ctx.tainted.remove(name);
        ctx.deps.remove(name);
    }
}

/// True when the span contains a wire-read source call.
fn span_has_source(ctx: &Ctx<'_, '_, '_>, span: Span) -> bool {
    ctx.ast.calls_in(span).iter().any(|c| {
        let name = ctx.toks[c.name_tok].text;
        (c.is_method && SOURCE_METHODS.contains(&name))
            || SOURCE_CALLS.contains(&name)
            || name.starts_with("recv_frame")
    })
}

/// True when the span caps the value right where it is used.
fn sanitized_at_use(ctx: &Ctx<'_, '_, '_>, span: Span) -> bool {
    ctx.ast
        .calls_in(span)
        .iter()
        .any(|c| c.is_method && matches!(ctx.toks[c.name_tok].text, "min" | "clamp"))
}

/// Sanitizes `name` and everything linked to it through derivation,
/// in both directions (checking `need = n * 8` also clears `n`).
fn sanitize_closure(ctx: &mut Ctx<'_, '_, '_>, name: &str) {
    let mut work = vec![name.to_string()];
    while let Some(n) = work.pop() {
        if !ctx.tainted.remove(&n) {
            continue;
        }
        if let Some(srcs) = ctx.deps.get(&n) {
            work.extend(srcs.iter().cloned());
        }
        for (k, srcs) in &ctx.deps {
            if srcs.iter().any(|s| s == &n) {
                work.push(k.clone());
            }
        }
    }
}

/// The tainted names an ordering comparison in `span` mentions.
fn checked_names(ctx: &Ctx<'_, '_, '_>, span: Span) -> Vec<String> {
    if !has_ordering_cmp(ctx.toks, span) {
        return Vec::new();
    }
    ctx.tainted.iter().filter(|n| span_mentions(ctx.toks, span, n)).cloned().collect()
}

/// `assert!`/`debug_assert!` with an ordering comparison sanitizes the
/// names it mentions for the rest of the scope.
fn apply_assert_sanitizers(ctx: &mut Ctx<'_, '_, '_>, span: Span) {
    let mut cleared = Vec::new();
    for c in ctx.ast.calls_in(span) {
        if c.is_macro && matches!(ctx.toks[c.name_tok].text, "assert" | "debug_assert") {
            cleared.extend(checked_names(ctx, c.args));
        }
    }
    for n in cleared {
        sanitize_closure(ctx, &n);
    }
}

fn walk_expr(ctx: &mut Ctx<'_, '_, '_>, e: ExprId) {
    let expr = ctx.ast.exprs[e].clone();
    match &expr.kind {
        ExprKind::If { conds } => {
            for c in conds {
                check_sinks(ctx, *c);
            }
            for (i, b) in expr.blocks.iter().enumerate() {
                // Entering branch i: every ordering comparison in the
                // chain up to and including cond i dominates it — an
                // earlier one was false, the current one true; either
                // way the value was checked against a bound.
                let saved_tainted = ctx.tainted.clone();
                let saved_deps = ctx.deps.clone();
                let upto = (i + 1).min(conds.len());
                let mut cleared = Vec::new();
                for c in &conds[..upto] {
                    cleared.extend(checked_names(ctx, *c));
                }
                for n in cleared {
                    sanitize_closure(ctx, &n);
                }
                walk_block(ctx, *b);
                ctx.tainted = saved_tainted;
                ctx.deps = saved_deps;
            }
            // After the statement: a guard branch that exits early
            // leaves its checked names sanitized on the fall-through.
            for (i, c) in conds.iter().enumerate() {
                let Some(&b) = expr.blocks.get(i) else { continue };
                if block_has_early_exit(ctx.toks, &ctx.ast.blocks[b]) {
                    for n in checked_names(ctx, *c) {
                        sanitize_closure(ctx, &n);
                    }
                }
            }
        }
        ExprKind::Match { head, arms } => {
            check_sinks(ctx, *head);
            for arm in arms {
                let saved_tainted = ctx.tainted.clone();
                let saved_deps = ctx.deps.clone();
                walk_expr(ctx, arm.body);
                ctx.tainted = saved_tainted;
                ctx.deps = saved_deps;
            }
        }
        ExprKind::For { iter } => {
            check_loop_bound(ctx, *iter);
            check_sinks(ctx, *iter);
            for b in &expr.blocks {
                walk_block(ctx, *b);
            }
        }
        ExprKind::While { cond } => {
            // A `while` condition is neither a sink nor a sanitizer:
            // it is re-evaluated, so it neither allocates once nor
            // proves a bound for code after the loop.
            check_sinks(ctx, *cond);
            for b in &expr.blocks {
                walk_block(ctx, *b);
            }
        }
        ExprKind::Plain => {
            check_sinks(ctx, expr.span);
            apply_assert_sanitizers(ctx, expr.span);
            for b in &expr.blocks {
                walk_block(ctx, *b);
            }
        }
    }
}

/// Walks only the nested blocks of an expression (used for `let`
/// initializers, whose span is sink-checked separately).
fn walk_expr_blocks(ctx: &mut Ctx<'_, '_, '_>, e: ExprId) {
    let blocks = ctx.ast.exprs[e].blocks.clone();
    for b in blocks {
        walk_block(ctx, b);
    }
}

/// The tainted name `span` mentions, if any (first in token order).
fn tainted_in(ctx: &Ctx<'_, '_, '_>, span: Span) -> Option<(usize, String)> {
    for k in span.0..span.1.min(ctx.toks.len()) {
        let t = ctx.toks[k];
        if t.kind == TokKind::Ident && ctx.tainted.contains(t.text) {
            return Some((k, t.text.to_string()));
        }
    }
    None
}

fn report(ctx: &mut Ctx<'_, '_, '_>, at: usize, name: &str, sink: &str) {
    let t = ctx.toks[at];
    if !ctx.emit || ctx.input.allowed(t.line - 1, Rule::WireTaint) {
        return;
    }
    if !ctx.seen.insert((t.line, t.col)) {
        return;
    }
    ctx.diags.push(Diagnostic::spanned(
        ctx.input.rel,
        t.line,
        t.col,
        t.col + t.text.len(),
        Rule::WireTaint,
        format!(
            "wire-tainted value `{name}` used as {sink} without a dominating bounds check — \
             cap it first (`.min(…)`, compare against a `MAX_*`/`max_frame_bytes` limit with \
             an early return, or justify with `modelcheck-allow: wire-taint`)"
        ),
    ));
}

/// Allocation, index, and `vec![…; n]` sinks inside `span`.
fn check_sinks(ctx: &mut Ctx<'_, '_, '_>, span: Span) {
    let calls: Vec<_> = ctx.ast.calls_in(span).to_vec();
    for c in &calls {
        let name = ctx.toks[c.name_tok].text;
        let is_alloc = (name == "with_capacity" && !c.is_method)
            || (c.is_method && ALLOC_METHODS.contains(&name))
            || (c.is_macro && name == "vec" && args_have_repeat_semi(ctx, c.args));
        if !is_alloc || sanitized_at_use(ctx, c.args) {
            continue;
        }
        let direct_source = span_has_source(ctx, c.args);
        if let Some((_, tname)) = tainted_in(ctx, c.args) {
            report(ctx, c.name_tok, &tname, &format!("the allocation size of `{name}`"));
        } else if direct_source {
            report(ctx, c.name_tok, "<wire read>", &format!("the allocation size of `{name}`"));
        }
    }
    // Postfix slice indexes: `expr[…]` where the bracket follows a
    // value position (identifier, `)`, `]`, or `?`).
    let end = span.1.min(ctx.toks.len());
    for k in span.0..end {
        if ctx.toks[k].text != "[" || k == 0 {
            continue;
        }
        let prev = ctx.toks[k - 1];
        let value_pos = prev.kind == TokKind::Ident && prev.text != "return"
            || matches!(prev.text, ")" | "]" | "?");
        if !value_pos {
            continue;
        }
        let close = ctx.ast.pairs.get(k).copied().unwrap_or(usize::MAX);
        if close == usize::MAX || close > end {
            continue;
        }
        let interior = (k + 1, close);
        if sanitized_at_use(ctx, interior) {
            continue;
        }
        if let Some((at, tname)) = tainted_in(ctx, interior) {
            report(ctx, at, &tname, "a slice index");
        }
    }
}

/// `for _ in 0..n` with tainted `n`: a wire-controlled loop bound.
fn check_loop_bound(ctx: &mut Ctx<'_, '_, '_>, iter: Span) {
    let end = iter.1.min(ctx.toks.len());
    let has_range = (iter.0..end.saturating_sub(1)).any(|k| {
        ctx.toks[k].text == "."
            && ctx.toks[k + 1].text == "."
            && ctx.toks[k].end == ctx.toks[k + 1].start
    });
    if !has_range || sanitized_at_use(ctx, iter) {
        return;
    }
    if let Some((at, tname)) = tainted_in(ctx, iter) {
        report(ctx, at, &tname, "a loop bound");
    }
}

/// True for `vec![elem; count]` (the repeat form, which allocates
/// `count` elements) as opposed to `vec![a, b, c]`.
fn args_have_repeat_semi(ctx: &Ctx<'_, '_, '_>, args: Span) -> bool {
    let mut k = args.0;
    let end = args.1.min(ctx.toks.len());
    while k < end {
        match ctx.toks[k].text {
            "(" | "[" | "{" => {
                let close = ctx.ast.pairs.get(k).copied().unwrap_or(usize::MAX);
                if close == usize::MAX || close >= end {
                    return false;
                }
                k = close + 1;
            }
            ";" => return true,
            _ => k += 1,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::FileScope;

    fn scan(body: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", body, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        run(&input, &toks, &ast)
    }

    #[test]
    fn unguarded_with_capacity_from_cursor_read_fires() {
        let src = "fn f(c: &mut Cur) -> R {\n\
                   \x20   let n = c.u32()? as usize;\n\
                   \x20   let v = Vec::with_capacity(n);\n\
                   \x20   Ok(v)\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("with_capacity"), "{d:?}");
    }

    #[test]
    fn resize_of_recv_frame_len_fires() {
        let src = "fn f(s: &mut S, body: &mut Vec<u8>) {\n\
                   \x20   let len = recv_frame_len(s);\n\
                   \x20   body.resize(len, 0);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("resize"));
    }

    #[test]
    fn min_at_use_and_in_init_sanitize() {
        let src = "fn f(c: &mut Cur) {\n\
                   \x20   let n = c.u32()? as usize;\n\
                   \x20   let v = Vec::with_capacity(n.min(64));\n\
                   \x20   let m = n.min(MAX_MACHINES);\n\
                   \x20   let w = Vec::with_capacity(m);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn early_return_guard_sanitizes_via_derivation_links() {
        // The `Cur::matrix` shape: the *product* is checked, which must
        // clear the underlying count for the later loop bound.
        let src = "fn f(c: &mut Cur) -> R {\n\
                   \x20   let n = c.u32()? as usize;\n\
                   \x20   let need = n * 8;\n\
                   \x20   if need > c.remaining() { return Err(e()); }\n\
                   \x20   for i in 0..n { touch(i); }\n\
                   \x20   Ok(())\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unguarded_loop_bound_and_index_fire() {
        let src = "fn f(c: &mut Cur, buf: &[u8]) {\n\
                   \x20   let n = u32::from_le_bytes(four(buf)) as usize;\n\
                   \x20   for i in 0..n { touch(i); }\n\
                   \x20   let b = buf[n];\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("loop bound"));
        assert!(d[1].message.contains("slice index"));
    }

    #[test]
    fn else_branch_domination_sanitizes() {
        // The `server.rs` frame loop shape.
        let src = "fn f(c: &mut Cur, body: &mut Vec<u8>, max: usize) {\n\
                   \x20   let len = c.u32()? as usize;\n\
                   \x20   if len == 0 { tiny(); } else if len > max { huge(); } else {\n\
                   \x20       body.resize(len, 0);\n\
                   \x20   }\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn equality_check_does_not_sanitize() {
        let src = "fn f(c: &mut Cur, body: &mut Vec<u8>) {\n\
                   \x20   let len = c.u32()? as usize;\n\
                   \x20   if len == 0 { return; }\n\
                   \x20   body.resize(len, 0);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn vec_repeat_macro_is_a_sink_but_list_form_is_not() {
        let src = "fn f(c: &mut Cur) {\n\
                   \x20   let n = c.u16()? as usize;\n\
                   \x20   let a = vec![0u8; n];\n\
                   \x20   let b = vec![n, n, n];\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("vec"));
    }

    #[test]
    fn assert_sanitizes_and_allow_suppresses() {
        let ok = "fn f(c: &mut Cur) {\n\
                  \x20   let n = c.u32()? as usize;\n\
                  \x20   assert!(n <= CAP);\n\
                  \x20   let v = Vec::with_capacity(n);\n\
                  }\n";
        assert!(scan(ok).is_empty());
        let allowed = "fn f(c: &mut Cur) {\n\
                       \x20   let n = c.u32()? as usize;\n\
                       \x20   // modelcheck-allow: wire-taint — n is operator-controlled config\n\
                       \x20   let v = Vec::with_capacity(n);\n\
                       }\n";
        assert!(scan(allowed).is_empty());
    }

    #[test]
    fn plain_read_is_not_a_source_and_tests_are_exempt() {
        let reads = "fn f(s: &mut S, scratch: &mut [u8]) {\n\
                     \x20   let n = s.read(scratch).unwrap();\n\
                     \x20   let v = Vec::with_capacity(n);\n\
                     }\n";
        assert!(scan(reads).is_empty());
        let tested = "#[cfg(test)]\nmod t {\n\
                      fn f(c: &mut Cur) { let n = c.u32().unwrap(); let v = vec![0; n]; }\n\
                      }\n";
        assert!(scan(tested).is_empty());
    }
}
