//! The `protocol-drift` pass: the wire protocol is defined in four
//! places and they must agree.
//!
//! 1. `crates/proto/src/proto.rs` — the `Request`/`Response` enums
//!    and their `kind()` tag strings are the source of truth.
//! 2. `crates/proto/src/codec.rs` — the fast path must handle (or
//!    *explicitly decline*, like `"rank" => None` or
//!    `Response::Ranked(_) => return false`) every kind; a variant
//!    added to proto.rs without touching codec.rs silently routes all
//!    traffic for it through the slow generic path — or worse, drifts
//!    the fast writer away from byte-identity.
//! 3. `crates/proto/src/binproto.rs` — the binary codec must give
//!    every kind a frame layout (or decline it explicitly, the same
//!    variant-mention rule); a kind missing here would serialize over
//!    JSON but fail the moment a client negotiates binary.
//! 4. The wire-protocol table in DESIGN.md §8 — operators read the
//!    docs, not the source.
//! 5. `crates/predictgw/src/gateway.rs` — the federation gateway's
//!    dispatch must mention every *request* kind (route it, fan it
//!    out, or decline it explicitly); a request kind added to proto.rs
//!    without a gateway arm would error at the gateway for traffic
//!    every backend understands. Response kinds are exempt: the
//!    gateway forwards backend responses opaquely.
//! 6. The journal-record table in DESIGN.md §9 against the `REC_*`
//!    constants in `crates/predictgw/src/journal.rs` — the journal is
//!    an on-disk format operators may have to inspect long after the
//!    gateway that wrote it is gone, so its documented record tags are
//!    held to the same no-drift rule as the wire table. Rows look like
//!    `| `0x02` | `REC_REPORT` | … |`; both name and tag byte must
//!    match the constants exactly.
//!
//! The pass lexes proto.rs and harvests `(direction, Variant, "kind")`
//! triples from the enum declarations and the single-line match arms
//! that pair a `Request::V`/`Response::V` path with a string literal
//! (`kind()`, serialization, deserialization — all three agree or
//! that's a finding too). Codec coverage — for the fast JSON path and
//! the binary codec alike — counts a non-test mention of either the
//! kind string (standalone, or embedded as a `"kind":"…"` tag in a
//! write pattern) or the variant path. The DESIGN table is any set of
//! markdown rows `| `kind` | direction | … |` (extra columns, like the
//! binary tag, are welcome). `#[cfg(test)]` lines never count as
//! coverage.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use super::FileInput;
use crate::lexer::{TokKind, Token};
use crate::{Diagnostic, FileScope, Rule};

/// Workspace-relative location of the protocol source of truth.
pub const PROTO_REL: &str = "crates/proto/src/proto.rs";
/// Workspace-relative location of the fast-path codec.
pub const CODEC_REL: &str = "crates/proto/src/codec.rs";
/// Workspace-relative location of the binary codec.
pub const BINPROTO_REL: &str = "crates/proto/src/binproto.rs";
/// Workspace-relative location of the protocol documentation.
pub const DESIGN_REL: &str = "DESIGN.md";
/// Workspace-relative location of the federation gateway's dispatch.
pub const GATEWAY_REL: &str = "crates/predictgw/src/gateway.rs";
/// Workspace-relative location of the journal record format.
pub const JOURNAL_REL: &str = "crates/predictgw/src/journal.rs";

/// One protocol side: enum variants and the kind tags paired with them.
#[derive(Debug, Default)]
struct Side {
    /// Variant name → declaration line (1-based).
    variants: BTreeMap<String, usize>,
    /// Variant name → kind tag (first seen) and the line it came from.
    kinds: BTreeMap<String, (String, usize)>,
}

/// Strips quotes and prefixes off a `Str` token's text; `None` for raw
/// or escaped strings (the protocol tags are plain).
fn str_content(text: &str) -> Option<&str> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('\\') {
        None
    } else {
        Some(inner)
    }
}

/// Groups a token stream by 1-based line, excluding comments.
fn lines_of<'t, 'a>(input: &'t FileInput<'a>) -> BTreeMap<usize, Vec<&'t Token<'a>>> {
    let mut map: BTreeMap<usize, Vec<&Token<'_>>> = BTreeMap::new();
    for t in input.code_tokens() {
        map.entry(t.line).or_default().push(t);
    }
    map
}

/// Harvests both enum declarations from proto.rs tokens.
fn harvest_enums(input: &FileInput<'_>, sides: &mut BTreeMap<&'static str, Side>) {
    let toks = input.code_tokens();
    let mut i = 0;
    while i + 2 < toks.len() {
        let is_target = toks[i].text == "enum"
            && toks[i].kind == TokKind::Ident
            && matches!(toks[i + 1].text, "Request" | "Response")
            && toks[i + 2].text == "{";
        if !is_target {
            i += 1;
            continue;
        }
        let dir = if toks[i + 1].text == "Request" { "request" } else { "response" };
        let side = sides.get_mut(dir).expect("both sides pre-seeded");
        let mut depth = 1i64;
        let mut k = i + 3;
        while k < toks.len() && depth > 0 {
            match toks[k].text {
                "{" => depth += 1,
                "}" => depth -= 1,
                "#" if depth == 1 && toks.get(k + 1).is_some_and(|t| t.text == "[") => {
                    // Skip an attribute's bracket group.
                    let mut b = 0i64;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text {
                            "[" => b += 1,
                            "]" => {
                                b -= 1;
                                if b == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                _ if depth == 1 && toks[k].kind == TokKind::Ident => {
                    side.variants.insert(toks[k].text.to_string(), toks[k].line);
                    // Skip a tuple payload so its type names are not
                    // mistaken for variants.
                    if toks.get(k + 1).is_some_and(|t| t.text == "(") {
                        let mut p = 0i64;
                        k += 1;
                        while k < toks.len() {
                            match toks[k].text {
                                "(" => p += 1,
                                ")" => {
                                    p -= 1;
                                    if p == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                }
                _ => {}
            }
            k += 1;
        }
        i = k;
    }
}

/// Harvests `Variant → "kind"` pairs from single-line match arms that
/// mention `Request::V`/`Response::V`, a plain string literal, and
/// `=>`. Emits a drift diagnostic when two arms disagree.
fn harvest_kinds(
    input: &FileInput<'_>,
    sides: &mut BTreeMap<&'static str, Side>,
    diags: &mut Vec<Diagnostic>,
) {
    for (line, toks) in lines_of(input) {
        if input.in_test(line) {
            continue;
        }
        let has_arrow =
            toks.windows(2).any(|w| w[0].text == "=" && w[1].text == ">" && w[0].end == w[1].start);
        if !has_arrow {
            continue;
        }
        let Some(s) =
            toks.iter().find_map(
                |t| {
                    if t.kind == TokKind::Str {
                        str_content(t.text)
                    } else {
                        None
                    }
                },
            )
        else {
            continue;
        };
        for w in toks.windows(4) {
            let path = w[0].kind == TokKind::Ident
                && matches!(w[0].text, "Request" | "Response")
                && w[1].text == ":"
                && w[2].text == ":"
                && w[3].kind == TokKind::Ident;
            if !path {
                continue;
            }
            let dir = if w[0].text == "Request" { "request" } else { "response" };
            let side = sides.get_mut(dir).expect("pre-seeded");
            let variant = w[3].text.to_string();
            match side.kinds.get(&variant) {
                Some((prev, prev_line)) if prev != s => diags.push(Diagnostic::at_line(
                    input.rel,
                    line,
                    Rule::ProtocolDrift,
                    format!(
                        "{}::{variant} is tagged {s:?} here but {prev:?} on line \
                         {prev_line} — the kind() / serialize / deserialize arms drifted",
                        w[0].text
                    ),
                )),
                Some(_) => {}
                None => {
                    side.kinds.insert(variant, (s.to_string(), line));
                }
            }
        }
    }
}

/// What the codec mentions outside `#[cfg(test)]`: plain string
/// literals (plus embedded `"kind":"…"` tags) and variant paths.
#[derive(Debug, Default)]
struct CodecCoverage {
    strings: Vec<String>,
    variants: BTreeMap<&'static str, Vec<String>>,
}

fn harvest_codec(input: &FileInput<'_>) -> CodecCoverage {
    let mut cov = CodecCoverage::default();
    let toks = input.code_tokens();
    for (k, t) in toks.iter().enumerate() {
        if input.in_test(t.line) {
            continue;
        }
        if t.kind == TokKind::Str {
            if let Some(inner) = t.text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                cov.strings.push(inner.to_string());
            }
        }
        let path = t.kind == TokKind::Ident
            && matches!(t.text, "Request" | "Response")
            && toks.get(k + 1).is_some_and(|n| n.text == ":")
            && toks.get(k + 2).is_some_and(|n| n.text == ":")
            && toks.get(k + 3).is_some_and(|n| n.kind == TokKind::Ident);
        if path {
            let dir = if t.text == "Request" { "request" } else { "response" };
            cov.variants.entry(dir).or_default().push(toks[k + 3].text.to_string());
        }
    }
    cov
}

impl CodecCoverage {
    /// True when the codec visibly handles (or declines) this kind.
    fn covers(&self, dir: &str, variant: &str, kind: &str) -> bool {
        let tag = format!("\\\"kind\\\":\\\"{kind}\\\"");
        let tag_unescaped = format!("\"kind\":\"{kind}\"");
        if self
            .strings
            .iter()
            .any(|s| s == kind || s.contains(tag.as_str()) || s.contains(tag_unescaped.as_str()))
        {
            return true;
        }
        self.variants.get(dir).is_some_and(|v| v.iter().any(|x| x == variant))
    }
}

/// Parses a numeric token (or table cell) like `0x02` into its value.
/// `None` for anything that is not a plain hex literal.
fn hex_value(text: &str) -> Option<u64> {
    let digits = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))?;
    let digits: String = digits.chars().filter(|c| *c != '_').collect();
    u64::from_str_radix(&digits, 16).ok()
}

/// Harvests `const REC_* : u8 = 0x…` declarations from journal.rs
/// tokens: `(name, tag value, 1-based line)`.
fn journal_consts(input: &FileInput<'_>) -> Vec<(String, u64, usize)> {
    let mut out = Vec::new();
    let toks = input.code_tokens();
    for (k, t) in toks.iter().enumerate() {
        let decl = t.kind == TokKind::Ident
            && t.text == "const"
            && toks.get(k + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks[k + 1].text.starts_with("REC_")
            && toks.get(k + 2).is_some_and(|n| n.text == ":")
            && toks.get(k + 3).is_some_and(|n| n.text == "u8")
            && toks.get(k + 4).is_some_and(|n| n.text == "=")
            && toks.get(k + 5).is_some_and(|n| n.kind == TokKind::Number);
        if !decl || input.in_test(t.line) {
            continue;
        }
        if let Some(v) = hex_value(toks[k + 5].text) {
            out.push((toks[k + 1].text.to_string(), v, t.line));
        }
    }
    out
}

/// A DESIGN.md journal-table row `| `0xNN` | `REC_X` | … |`:
/// `(tag value, record name, 1-based line)`. The hex-tag first cell
/// keeps these rows disjoint from the wire table's `| `kind` |
/// request/response |` shape, so neither check misreads the other's
/// table.
fn design_journal_rows(design: &str) -> Vec<(u64, String, usize)> {
    let mut rows = Vec::new();
    for (i, line) in design.lines().enumerate() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() < 4 {
            continue;
        }
        let Some(tag) = cells[1].strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
            continue;
        };
        let Some(name) = cells[2].strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
            continue;
        };
        if !name.starts_with("REC_") {
            continue;
        }
        if let Some(v) = hex_value(tag) {
            rows.push((v, name.to_string(), i + 1));
        }
    }
    rows
}

/// A DESIGN.md wire-table row: (direction, kind, 1-based line).
fn design_rows(design: &str) -> Vec<(String, String, usize)> {
    let mut rows = Vec::new();
    for (i, line) in design.lines().enumerate() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // `| `kind` | direction | … |` splits into ["", "`kind`", "direction", …].
        if cells.len() < 4 {
            continue;
        }
        let Some(kind) = cells[1].strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
            continue;
        };
        let dir = cells[2];
        if matches!(dir, "request" | "response") {
            rows.push((dir.to_string(), kind.to_string(), i + 1));
        }
    }
    rows
}

/// The testable core: checks the six protocol views against each
/// other. `binproto` is `None` when the binary codec file is absent
/// (one finding — a protocol without a binary layout is drift in
/// itself); `design` is `None` when DESIGN.md is absent; `gateway` and
/// `journal` are `None` when the workspace has no gateway tier
/// (silently skipped — the gateway is a subscriber to the protocol,
/// not part of it). The flat `(rel, text)` pairs keep fixtures trivial
/// to feed in tests.
#[allow(clippy::too_many_arguments)]
pub fn check(
    proto_rel: &str,
    proto: &str,
    codec_rel: &str,
    codec: &str,
    binproto_rel: &str,
    binproto: Option<&str>,
    design_rel: &str,
    design: Option<&str>,
    gateway_rel: &str,
    gateway: Option<&str>,
    journal_rel: &str,
    journal: Option<&str>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let (proto_in, lex1) = FileInput::build(proto_rel, proto, FileScope::NONE);
    let (codec_in, lex2) = FileInput::build(codec_rel, codec, FileScope::NONE);
    if !lex1.is_empty() || !lex2.is_empty() {
        // Lex failures are already reported by the per-file passes;
        // drift checking on a half-lexed protocol would only add noise.
        return diags;
    }

    let mut sides: BTreeMap<&'static str, Side> = BTreeMap::new();
    sides.insert("request", Side::default());
    sides.insert("response", Side::default());
    harvest_enums(&proto_in, &mut sides);
    harvest_kinds(&proto_in, &mut sides, &mut diags);
    let cov = harvest_codec(&codec_in);

    // The binary codec is held to the same coverage rule as the fast
    // JSON path; a half-lexed binproto is skipped (its own per-file
    // passes report the lex failure), a missing one is a finding.
    let bin_cov = match binproto {
        Some(text) => {
            let (bin_in, lex3) = FileInput::build(binproto_rel, text, FileScope::NONE);
            if lex3.is_empty() {
                Some(harvest_codec(&bin_in))
            } else {
                None
            }
        }
        None => {
            diags.push(Diagnostic::at_line(
                binproto_rel,
                1,
                Rule::ProtocolDrift,
                "proto.rs exists but the binary codec is missing — every wire kind \
                 needs a binary frame layout (or an explicit decline)"
                    .to_string(),
            ));
            None
        }
    };

    // The gateway dispatch is held to the coverage rule for request
    // kinds only; a half-lexed gateway is skipped (its own per-file
    // passes report the lex failure).
    let gw_cov = gateway.and_then(|text| {
        let (gw_in, lex4) = FileInput::build(gateway_rel, text, FileScope::NONE);
        if lex4.is_empty() {
            Some(harvest_codec(&gw_in))
        } else {
            None
        }
    });

    let rows = design.map(design_rows);
    if let Some(rows) = &rows {
        if rows.is_empty() {
            diags.push(Diagnostic::at_line(
                design_rel,
                1,
                Rule::ProtocolDrift,
                "no wire-protocol table found (rows of the form \
                 `| \u{60}kind\u{60} | request | … |`) — document the protocol"
                    .to_string(),
            ));
        }
    }

    for (dir, side) in &sides {
        for (variant, line) in &side.variants {
            let Some((kind, _)) = side.kinds.get(variant) else {
                diags.push(Diagnostic::at_line(
                    proto_rel,
                    *line,
                    Rule::ProtocolDrift,
                    format!(
                        "{dir} variant `{variant}` has no kind tag in any \
                         `kind()`/serialize/deserialize match arm"
                    ),
                ));
                continue;
            };
            if !cov.covers(dir, variant, kind) {
                diags.push(Diagnostic::at_line(
                    codec_rel,
                    1,
                    Rule::ProtocolDrift,
                    format!(
                        "{dir} kind {kind:?} (`{variant}`) has no fast-path arm or \
                         explicit decline in the codec — add one (or decline it \
                         explicitly) so the fast and generic paths cannot drift"
                    ),
                ));
            }
            if let Some(bin) = &bin_cov {
                if !bin.covers(dir, variant, kind) {
                    diags.push(Diagnostic::at_line(
                        binproto_rel,
                        1,
                        Rule::ProtocolDrift,
                        format!(
                            "{dir} kind {kind:?} (`{variant}`) has no binary \
                             encode/decode arm or explicit decline in the binary \
                             codec — give it a frame layout (or decline it \
                             explicitly) so the binary and JSON codecs cannot drift"
                        ),
                    ));
                }
            }
            if *dir == "request" {
                if let Some(gw) = &gw_cov {
                    if !gw.covers(dir, variant, kind) {
                        diags.push(Diagnostic::at_line(
                            gateway_rel,
                            1,
                            Rule::ProtocolDrift,
                            format!(
                                "request kind {kind:?} (`{variant}`) has no dispatch \
                                 arm or explicit decline in the gateway — route it, \
                                 fan it out, or decline it explicitly so federated \
                                 clients cannot drift from the backends"
                            ),
                        ));
                    }
                }
            }
            if let Some(rows) = &rows {
                if !rows.is_empty() && !rows.iter().any(|(d, k, _)| d == dir && k == kind) {
                    diags.push(Diagnostic::at_line(
                        design_rel,
                        rows.first().map_or(1, |r| r.2),
                        Rule::ProtocolDrift,
                        format!(
                            "wire-protocol table lacks a row for {dir} kind {kind:?} \
                             (`{variant}`)"
                        ),
                    ));
                }
            }
        }
    }
    if let Some(rows) = &rows {
        for (dir, kind, line) in rows {
            let side = &sides[dir.as_str()];
            if !side.kinds.values().any(|(k, _)| k == kind) {
                diags.push(Diagnostic::at_line(
                    design_rel,
                    *line,
                    Rule::ProtocolDrift,
                    format!(
                        "wire-protocol table documents {dir} kind {kind:?}, which \
                         does not exist in proto.rs"
                    ),
                ));
            }
        }
    }

    // The journal on-disk format: every REC_* constant needs a
    // documented row with the matching tag byte, and every documented
    // row must name a live constant. A half-lexed journal is skipped
    // (its own per-file passes report the lex failure).
    if let (Some(journal), Some(design)) = (journal, design) {
        let (j_in, lexj) = FileInput::build(journal_rel, journal, FileScope::NONE);
        if lexj.is_empty() {
            let consts = journal_consts(&j_in);
            let rows = design_journal_rows(design);
            if !consts.is_empty() && rows.is_empty() {
                diags.push(Diagnostic::at_line(
                    design_rel,
                    1,
                    Rule::ProtocolDrift,
                    "no journal-record table found (rows of the form \
                     `| \u{60}0xNN\u{60} | \u{60}REC_X\u{60} | … |`) — document the \
                     journal's on-disk format"
                        .to_string(),
                ));
            }
            for (name, value, line) in &consts {
                match rows.iter().find(|(_, n, _)| n == name) {
                    None if !rows.is_empty() => diags.push(Diagnostic::at_line(
                        journal_rel,
                        *line,
                        Rule::ProtocolDrift,
                        format!(
                            "journal record `{name}` (tag {value:#04x}) has no row in \
                             the DESIGN.md journal-record table"
                        ),
                    )),
                    Some((tag, _, row_line)) if tag != value => diags.push(Diagnostic::at_line(
                        design_rel,
                        *row_line,
                        Rule::ProtocolDrift,
                        format!(
                            "journal-record table tags `{name}` as {tag:#04x}, but \
                             journal.rs defines it as {value:#04x}"
                        ),
                    )),
                    _ => {}
                }
            }
            for (tag, name, line) in &rows {
                if !consts.iter().any(|(n, _, _)| n == name) {
                    diags.push(Diagnostic::at_line(
                        design_rel,
                        *line,
                        Rule::ProtocolDrift,
                        format!(
                            "journal-record table documents `{name}` (tag {tag:#04x}), \
                             which does not exist in journal.rs"
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Runs the drift pass over a workspace root; a no-op when the
/// workspace has no predictd protocol (fixture trees, other repos).
pub fn check_workspace(root: &Path) -> Vec<Diagnostic> {
    let Ok(proto) = fs::read_to_string(root.join(PROTO_REL)) else {
        return Vec::new();
    };
    let Ok(codec) = fs::read_to_string(root.join(CODEC_REL)) else {
        return vec![Diagnostic::at_line(
            CODEC_REL,
            1,
            Rule::ProtocolDrift,
            "proto.rs exists but codec.rs is missing — the fast path lost its codec".to_string(),
        )];
    };
    let binproto = fs::read_to_string(root.join(BINPROTO_REL)).ok();
    let design = fs::read_to_string(root.join(DESIGN_REL)).ok();
    let gateway = fs::read_to_string(root.join(GATEWAY_REL)).ok();
    let journal = fs::read_to_string(root.join(JOURNAL_REL)).ok();
    check(
        PROTO_REL,
        &proto,
        CODEC_REL,
        &codec,
        BINPROTO_REL,
        binproto.as_deref(),
        DESIGN_REL,
        design.as_deref(),
        GATEWAY_REL,
        gateway.as_deref(),
        JOURNAL_REL,
        journal.as_deref(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO: &str = "\
pub enum Request {\n\
    Alpha(Alpha),\n\
    Beta,\n\
}\n\
impl Request {\n\
    pub fn kind(&self) -> &'static str {\n\
        match self {\n\
            Request::Alpha(_) => \"alpha\",\n\
            Request::Beta => \"beta\",\n\
        }\n\
    }\n\
}\n\
pub enum Response {\n\
    Ok,\n\
}\n\
impl Response {\n\
    pub fn kind(&self) -> &'static str {\n\
        match self {\n\
            Response::Ok => \"ok\",\n\
        }\n\
    }\n\
}\n";

    const DESIGN_OK: &str = "\
| kind | direction | payload |\n\
|------|-----------|---------|\n\
| `alpha` | request | a |\n\
| `beta` | request | none |\n\
| `ok` | response | none |\n";

    const BINPROTO: &str = "\
fn encode(r: &Request) { match r { Request::Alpha(_) => (), Request::Beta => (), } }\n\
fn encode_resp(r: &Response) { match r { Response::Ok => (), } }\n";

    fn codec(arms: &str) -> String {
        format!("fn parse(kind: &str) -> Option<Request> {{\n    match kind {{\n{arms}        _ => None,\n    }}\n}}\nfn write(r: &Response) {{ match r {{ Response::Ok => (), }} }}\n")
    }

    fn check_all(
        proto: &str,
        codec: &str,
        bin: Option<&str>,
        design: Option<&str>,
    ) -> Vec<Diagnostic> {
        check("p.rs", proto, "c.rs", codec, "b.rs", bin, "D.md", design, "g.rs", None, "j.rs", None)
    }

    #[test]
    fn gateway_must_dispatch_every_request_kind() {
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n        \"beta\" => Some(Request::Beta),\n");
        // Full dispatch (variant mentions) is clean.
        let gw =
            "fn route(r: &Request) { match r { Request::Alpha(_) => (), Request::Beta => (), } }\n";
        let d = check(
            "p.rs",
            PROTO,
            "c.rs",
            &c,
            "b.rs",
            Some(BINPROTO),
            "D.md",
            Some(DESIGN_OK),
            "g.rs",
            Some(gw),
            "j.rs",
            None,
        );
        assert!(d.is_empty(), "{d:?}");

        // A request kind with no gateway arm is drift, filed at g.rs.
        let gw = "fn route(r: &Request) { match r { Request::Alpha(_) => (), } }\n";
        let d = check(
            "p.rs",
            PROTO,
            "c.rs",
            &c,
            "b.rs",
            Some(BINPROTO),
            "D.md",
            Some(DESIGN_OK),
            "g.rs",
            Some(gw),
            "j.rs",
            None,
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "g.rs");
        assert!(d[0].message.contains("\"beta\""), "{}", d[0].message);
        assert!(d[0].message.contains("gateway"), "{}", d[0].message);

        // Response kinds are exempt: a gateway that never names
        // Response::Ok stays clean (responses forward opaquely).
        let gw = "fn route(r: &Request) { match r { Request::Alpha(_) => (), Request::Beta => (), } }\nfn fwd(bytes: &[u8]) -> &[u8] { bytes }\n";
        let d = check(
            "p.rs",
            PROTO,
            "c.rs",
            &c,
            "b.rs",
            Some(BINPROTO),
            "D.md",
            Some(DESIGN_OK),
            "g.rs",
            Some(gw),
            "j.rs",
            None,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn journal_record_table_must_match_the_constants() {
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n        \"beta\" => Some(Request::Beta),\n");
        let journal = "pub const REC_META: u8 = 0x01;\npub const REC_REPORT: u8 = 0x02;\n";
        let table =
            |rows: &str| format!("{DESIGN_OK}\n| tag | record | payload |\n|---|---|---|\n{rows}");
        let full = table("| `0x01` | `REC_META` | magic |\n| `0x02` | `REC_REPORT` | report |\n");
        let ok = |design: &str| {
            check(
                "p.rs",
                PROTO,
                "c.rs",
                &c,
                "b.rs",
                Some(BINPROTO),
                "D.md",
                Some(design),
                "g.rs",
                None,
                "j.rs",
                Some(journal),
            )
        };
        assert!(ok(&full).is_empty(), "{:?}", ok(&full));

        // A constant without a row is drift, filed at the constant.
        let d = ok(&table("| `0x01` | `REC_META` | magic |\n"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "j.rs");
        assert!(d[0].message.contains("REC_REPORT"), "{}", d[0].message);

        // A row whose tag byte disagrees with the constant is drift.
        let d = ok(&table("| `0x01` | `REC_META` | magic |\n| `0x07` | `REC_REPORT` | report |\n"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "D.md");
        assert!(d[0].message.contains("0x07") && d[0].message.contains("0x02"), "{}", d[0].message);

        // A row documenting a record the code no longer writes is drift.
        let d = ok(&format!("{full}| `0x03` | `REC_GHOST` | ? |\n"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("does not exist"), "{}", d[0].message);

        // Constants with no table at all is one finding.
        let d = ok(DESIGN_OK);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no journal-record table"), "{}", d[0].message);
    }

    #[test]
    fn agreeing_views_are_clean() {
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n        \"beta\" => Some(Request::Beta),\n");
        let d = check_all(PROTO, &c, Some(BINPROTO), Some(DESIGN_OK));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_codec_arm_is_drift() {
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n");
        let d = check_all(PROTO, &c, Some(BINPROTO), Some(DESIGN_OK));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::ProtocolDrift);
        assert!(d[0].message.contains("\"beta\""), "{}", d[0].message);
        assert_eq!(d[0].file, "c.rs");
    }

    #[test]
    fn variant_mention_counts_as_explicit_decline() {
        let c = codec(
            "        \"alpha\" => Some(Request::Alpha(x)),\n        Request::Beta => None,\n",
        );
        let d = check_all(PROTO, &c, Some(BINPROTO), Some(DESIGN_OK));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_does_not_count_as_coverage() {
        let c = format!(
            "{}\n#[cfg(test)]\nmod t {{\n    fn f() {{ let x = \"beta\"; }}\n}}\n",
            codec("        \"alpha\" => Some(Request::Alpha(x)),\n")
        );
        let d = check_all(PROTO, &c, Some(BINPROTO), Some(DESIGN_OK));
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn design_table_must_cover_and_not_invent_kinds() {
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n        \"beta\" => Some(Request::Beta),\n");
        let missing = "| `alpha` | request | a |\n| `ok` | response | none |\n";
        let d = check_all(PROTO, &c, Some(BINPROTO), Some(missing));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lacks a row"), "{}", d[0].message);

        let ghost = format!("{DESIGN_OK}| `ghost` | request | ? |\n");
        let d = check_all(PROTO, &c, Some(BINPROTO), Some(&ghost));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("does not exist"), "{}", d[0].message);
    }

    #[test]
    fn no_table_at_all_is_one_finding() {
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n        \"beta\" => Some(Request::Beta),\n");
        let d = check_all(PROTO, &c, Some(BINPROTO), Some("prose only\n"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no wire-protocol table"));
    }

    #[test]
    fn missing_binary_arm_is_drift() {
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n        \"beta\" => Some(Request::Beta),\n");
        let bin = "fn encode(r: &Request) { match r { Request::Alpha(_) => (), } }\n\
                   fn encode_resp(r: &Response) { match r { Response::Ok => (), } }\n";
        let d = check_all(PROTO, &c, Some(bin), Some(DESIGN_OK));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "b.rs");
        assert!(d[0].message.contains("binary"), "{}", d[0].message);
        assert!(d[0].message.contains("\"beta\""), "{}", d[0].message);
    }

    #[test]
    fn binary_kind_string_counts_as_coverage() {
        // BINPROTO in the agreeing tests covers by variant mention; a
        // bare kind string (an explicit textual decline) works too.
        let bin = "fn enc() { let _ = (\"alpha\", \"beta\", \"ok\"); }\n";
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n        \"beta\" => Some(Request::Beta),\n");
        let d = check_all(PROTO, &c, Some(bin), Some(DESIGN_OK));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_binary_codec_file_is_drift() {
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n        \"beta\" => Some(Request::Beta),\n");
        let d = check_all(PROTO, &c, None, Some(DESIGN_OK));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("binary codec is missing"), "{}", d[0].message);
        assert_eq!(d[0].file, "b.rs");
    }

    #[test]
    fn variant_without_kind_tag_is_drift() {
        let proto = "pub enum Request {\n    Alpha(Alpha),\n    Ghost,\n}\nimpl Request {\n    pub fn kind(&self) -> &'static str {\n        match self {\n            Request::Alpha(_) => \"alpha\",\n        }\n    }\n}\n";
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n");
        let d = check_all(proto, &c, Some("fn e(r: &Request) { match r { Request::Alpha(_) => (), Request::Ghost => (), } }\n"), None);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Ghost"), "{}", d[0].message);
        assert_eq!(d[0].file, "p.rs");
    }

    #[test]
    fn disagreeing_tags_inside_proto_are_drift() {
        let proto = "pub enum Request {\n    Alpha(Alpha),\n}\nimpl Request {\n    pub fn kind(&self) -> &'static str {\n        match self {\n            Request::Alpha(_) => \"alpha\",\n        }\n    }\n    pub fn to_value(&self) {\n        match self {\n            Request::Alpha(p) => tagged(\"alfa\", p),\n        }\n    }\n}\n";
        let c = codec("        \"alpha\" => Some(Request::Alpha(x)),\n");
        let d = check_all(proto, &c, Some("fn e(r: &Request) { match r { Request::Alpha(_) => (), Request::Ghost => (), } }\n"), None);
        assert!(d.iter().any(|d| d.message.contains("drifted")), "{d:?}");
    }
}
