//! The `lock-order` pass: a static deadlock detector over the
//! workspace call graph.
//!
//! **Harvest** walks every function body once and records a
//! [`FnLocks`] summary: the lock classes it acquires directly, the
//! resolved calls it makes while a guard is live, whether its body is
//! a guard-returning helper (the gateway's `seq_lock()` pattern), and
//! its first directly blocking site (I/O or `sleep`). A *lock class*
//! names the lock object, not the guard: `read_lock(&self.shards[0])`
//! is `shards[0]`, a variable index is `shards[_]`, and a method-form
//! acquisition (`self.seq.lock()`) takes the receiver's last field
//! name (`seq`). Call sites of a guard-returning helper count as
//! acquisitions of the returned class.
//!
//! **Emit** closes the summaries over the call graph and reports two
//! hazards:
//!
//! 1. **Ordering cycles.** Every "class A held while acquiring class
//!    B" pair — a nested acquisition in one body, or a guard held
//!    across a call whose closure acquires B — is an edge A → B. An
//!    edge on a cycle (including A → A: re-acquiring a held class
//!    through a callee self-deadlocks) is reported at its acquisition
//!    or call site.
//! 2. **Guard held across a blocking callee.** A resolved call made
//!    with a guard live, where the callee's closure performs I/O or
//!    sleeps, turns the critical section into an I/O-length one —
//!    the cross-function version of lock-discipline's "guard across
//!    I/O" rule (which only sees the current body).
//!
//! Findings are emitted only in files whose crate opted into
//! `lock-order`; `modelcheck-allow: lock-order — <why>` suppresses a
//! site; `#[cfg(test)]` code is exempt.

use super::lock::{acquisition_at, binding_name, io_at};
use crate::ast::{Ast, BlockId, Span, StmtKind};
use crate::graph::{CallGraph, FileCtx, NodeId};
use crate::lexer::{TokKind, Token};
use crate::{Diagnostic, Rule};
use std::collections::{BTreeSet, HashSet};

/// The per-function lock summary.
#[derive(Debug, Clone, Default)]
pub struct FnLocks {
    /// Lock classes acquired directly in this body.
    pub acquires: Vec<Acq>,
    /// Resolved calls made while a guard is live.
    pub held_calls: Vec<HeldCall>,
    /// Nested direct acquisitions: (held class, acquired class).
    pub nested: Vec<Nested>,
    /// Set when the whole body is one guard-returning acquisition on a
    /// `self` field: callers treat calls to this fn as acquisitions.
    pub returns_lock: Option<String>,
    /// First directly blocking site: (shape, 1-based line).
    pub blocking: Option<(String, usize)>,
}

/// One direct lock acquisition.
#[derive(Debug, Clone)]
pub struct Acq {
    /// The lock class.
    pub class: String,
    /// True for `write_lock(`/`.write()`/`.lock()` (exclusive).
    pub write: bool,
    /// 1-based acquisition line.
    pub line: usize,
    /// Token index of the acquisition, for reporting.
    pub tok: usize,
}

/// One resolved call made while a guard is live.
#[derive(Debug, Clone)]
pub struct HeldCall {
    /// Class of the live guard (the outermost one of that class).
    pub class: String,
    /// The callee.
    pub callee: NodeId,
    /// 1-based line of the call.
    pub line: usize,
    /// Token index of the callee name, for reporting.
    pub tok: usize,
}

/// One nested direct acquisition (`second` acquired while `first`'s
/// guard is live).
#[derive(Debug, Clone)]
pub struct Nested {
    /// The class already held.
    pub first: String,
    /// The class being acquired.
    pub second: String,
    /// 1-based line of the second acquisition.
    pub line: usize,
    /// Token index of the second acquisition.
    pub tok: usize,
}

/// Lock acquisition for ordering purposes: the lock-discipline forms
/// plus argument-less `.lock()` (the gateway's sequencing `Mutex`).
fn acq_at(toks: &[&Token<'_>], k: usize) -> Option<(bool, usize)> {
    if let Some(hit) = acquisition_at(toks, k) {
        return Some(hit);
    }
    let t = toks[k];
    if t.kind == TokKind::Ident
        && t.text == "lock"
        && k > 0
        && toks[k - 1].text == "."
        && toks.get(k + 1).is_some_and(|n| n.text == "(")
        && toks.get(k + 2).is_some_and(|n| n.text == ")")
    {
        return Some((true, t.line));
    }
    None
}

/// The class of the lock acquired at `toks[k]` (an [`acq_at`] hit).
fn class_of(toks: &[&Token<'_>], ast: &Ast, k: usize) -> String {
    if matches!(toks[k].text, "read_lock" | "write_lock") {
        // Helper form: the class lives in the argument.
        let open = k + 1;
        let close = ast.pairs.get(open).copied().unwrap_or(usize::MAX);
        if close == usize::MAX {
            return "<lock>".to_string();
        }
        return class_of_span(toks, open + 1, close);
    }
    // Method form: the class is the receiver's last field.
    class_of_receiver(toks, k)
}

/// Last field-ish name in `toks[start..end]`, with an `[N]`/`[_]`
/// suffix when that field is indexed.
fn class_of_span(toks: &[&Token<'_>], start: usize, end: usize) -> String {
    let mut base = None;
    for k in start..end.min(toks.len()) {
        let t = toks[k];
        if t.kind != TokKind::Ident || matches!(t.text, "self" | "mut" | "ref") {
            continue;
        }
        if toks.get(k + 1).is_some_and(|n| n.text == "[") {
            let lit = toks
                .get(k + 2)
                .filter(|i| i.kind == TokKind::Number)
                .filter(|_| toks.get(k + 3).is_some_and(|n| n.text == "]"));
            return match lit {
                Some(i) => format!("{}[{}]", t.text, i.text),
                None => format!("{}[_]", t.text),
            };
        }
        base = Some(t.text.to_string());
    }
    base.unwrap_or_else(|| "<lock>".to_string())
}

/// Class from the receiver chain of a method-form acquisition at
/// `toks[k]` (`self.shards[i].read()` → `shards[_]`,
/// `self.seq.lock()` → `seq`).
fn class_of_receiver(toks: &[&Token<'_>], k: usize) -> String {
    if k < 2 {
        return "<lock>".to_string();
    }
    let j = k - 2; // the token before the `.`
    match toks[j].text {
        "]" => {
            // Indexed field: find the matching `[` backward.
            let mut depth = 0i64;
            let mut m = j;
            loop {
                match toks[m].text {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if m == 0 {
                    return "<lock>".to_string();
                }
                m -= 1;
            }
            let base = if m > 0 && toks[m - 1].kind == TokKind::Ident {
                toks[m - 1].text
            } else {
                return "<lock>".to_string();
            };
            let lit = (m + 2 == j && toks[m + 1].kind == TokKind::Number).then(|| toks[m + 1].text);
            match lit {
                Some(i) => format!("{base}[{i}]"),
                None => format!("{base}[_]"),
            }
        }
        _ if toks[j].kind == TokKind::Ident => toks[j].text.to_string(),
        _ => "<lock>".to_string(),
    }
}

/// True when the receiver chain ending right before the `.` at
/// `toks[k - 1]` starts at `self` (so the lock is a field of the
/// object, not a parameter — the guard-returning-helper criterion).
fn receiver_is_self_field(toks: &[&Token<'_>], k: usize) -> bool {
    if k < 2 {
        return false;
    }
    let mut m = k - 2;
    while m >= 2 && toks[m].kind == TokKind::Ident && toks[m - 1].text == "." {
        m -= 2;
    }
    toks[m].kind == TokKind::Ident && toks[m].text == "self"
}

/// Detects the guard-returning-helper shape: a one-statement body
/// whose expression is an acquisition on a `self` field (trailing
/// `unwrap_or_else`/`?` plumbing is fine).
fn returns_lock_of(toks: &[&Token<'_>], ast: &Ast, body: BlockId) -> Option<String> {
    let block = &ast.blocks[body];
    if block.stmts.len() != 1 {
        return None;
    }
    let StmtKind::Expr(_) = block.stmts[0].kind else { return None };
    for k in block.open + 1..block.close {
        if acq_at(toks, k).is_some() && toks[k - 1].text == "." && receiver_is_self_field(toks, k) {
            return Some(class_of(toks, ast, k));
        }
    }
    None
}

/// A live guard during the harvest walk.
struct Guard {
    /// Binding name when `let`-bound; `None` for a temporary.
    name: Option<String>,
    /// The guarded lock's class.
    class: String,
    /// Block depth at acquisition (body entry is depth 1).
    depth: i64,
}

struct Harvester<'w, 't, 'a> {
    files: &'w [FileCtx<'t, 'a>],
    g: &'w CallGraph,
    /// Pre-computed guard-returning classes, indexed by node.
    returns: &'w [Option<String>],
    node: NodeId,
    guards: Vec<Guard>,
    depth: i64,
    out: FnLocks,
}

impl<'w, 't, 'a> Harvester<'w, 't, 'a> {
    fn toks(&self) -> &'t [&'t Token<'a>] {
        self.files[self.g.nodes[self.node].file].toks
    }

    fn ast(&self) -> &'t Ast {
        self.files[self.g.nodes[self.node].file].ast
    }

    fn walk_block(&mut self, b: BlockId) {
        self.depth += 1;
        let stmts = self.ast().blocks[b].stmts.clone();
        for stmt in &stmts {
            let mut nested: Vec<BlockId> = Vec::new();
            match &stmt.kind {
                StmtKind::Item => continue, // nested fns harvest on their own
                StmtKind::Let { init: Some(e), .. } | StmtKind::Expr(e) => {
                    self.ast().blocks_of_expr(*e, &mut nested);
                }
                StmtKind::Let { .. } => {}
            }
            nested.sort_by_key(|&nb| self.ast().blocks[nb].open);
            self.scan_span(stmt.span, &nested);
            // Unbound temporaries die at statement end.
            let d = self.depth;
            self.guards.retain(|g| !(g.name.is_none() && g.depth == d));
        }
        self.depth -= 1;
        let d = self.depth;
        self.guards.retain(|g| g.depth <= d);
    }

    /// Scans a statement's tokens in source order, recursing into each
    /// nested block at its position so guard lifetimes stay accurate.
    fn scan_span(&mut self, span: Span, nested: &[BlockId]) {
        let mut ni = 0;
        let mut k = span.0;
        while k < span.1.min(self.toks().len()) {
            if ni < nested.len() && self.ast().blocks[nested[ni]].open == k {
                let close = self.ast().blocks[nested[ni]].close;
                self.walk_block(nested[ni]);
                ni += 1;
                k = close + 1;
                continue;
            }
            let toks = self.toks();
            let t = toks[k];
            if t.text == "drop"
                && t.kind == TokKind::Ident
                && toks.get(k + 1).is_some_and(|n| n.text == "(")
                && toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
                && toks.get(k + 3).is_some_and(|n| n.text == ")")
            {
                let name = toks[k + 2].text;
                self.guards.retain(|g| g.name.as_deref() != Some(name));
                k += 4;
                continue;
            }
            // Direct acquisition, or a call to a guard-returning helper.
            let direct = acq_at(toks, k).map(|(w, line)| (class_of(toks, self.ast(), k), w, line));
            let via_helper = if direct.is_none() {
                self.g.callee_of(self.node, k).and_then(|callee| {
                    self.returns[callee].clone().map(|class| (callee, class, t.line))
                })
            } else {
                None
            };
            if let Some((class, write, line)) = direct {
                self.acquire(class, write, line, k);
            } else if let Some((callee, class, line)) = via_helper {
                self.held_call(callee, k);
                self.acquire(class, true, line, k);
            } else if let Some(callee) = self.g.callee_of(self.node, k) {
                self.held_call(callee, k);
            } else if self.out.blocking.is_none() {
                if let Some(what) = io_at(toks, k) {
                    self.out.blocking = Some((what, t.line));
                } else if t.kind == TokKind::Ident
                    && t.text == "sleep"
                    && toks.get(k + 1).is_some_and(|n| n.text == "(")
                {
                    self.out.blocking = Some(("`sleep(`".to_string(), t.line));
                }
            }
            k += 1;
        }
    }

    fn acquire(&mut self, class: String, write: bool, line: usize, k: usize) {
        for g in &self.guards {
            if !self
                .out
                .nested
                .iter()
                .any(|n| n.first == g.class && n.second == class && n.line == line)
            {
                self.out.nested.push(Nested {
                    first: g.class.clone(),
                    second: class.clone(),
                    line,
                    tok: k,
                });
            }
        }
        if !self.out.acquires.iter().any(|a| a.class == class && a.line == line) {
            self.out.acquires.push(Acq { class: class.clone(), write, line, tok: k });
        }
        let name = binding_name(self.toks(), k, k + 1);
        self.guards.push(Guard { name, class, depth: self.depth });
    }

    fn held_call(&mut self, callee: NodeId, k: usize) {
        let line = self.toks()[k].line;
        let classes: Vec<String> = self.guards.iter().map(|g| g.class.clone()).collect();
        for class in classes {
            if !self.out.held_calls.iter().any(|h| h.class == class && h.callee == callee) {
                self.out.held_calls.push(HeldCall { class, callee, line, tok: k });
            }
        }
    }
}

/// Harvests the per-function lock summaries.
pub fn harvest(files: &[FileCtx<'_, '_>], g: &CallGraph) -> Vec<FnLocks> {
    let returns: Vec<Option<String>> = g
        .nodes
        .iter()
        .map(|n| {
            let f = &files[n.file];
            returns_lock_of(f.toks, f.ast, n.body)
        })
        .collect();
    let mut out = Vec::with_capacity(g.nodes.len());
    for id in 0..g.nodes.len() {
        let mut h = Harvester {
            files,
            g,
            returns: &returns,
            node: id,
            guards: Vec::new(),
            depth: 0,
            out: FnLocks::default(),
        };
        let body = g.nodes[id].body;
        h.walk_block(body);
        h.out.returns_lock = returns[id].clone();
        out.push(h.out);
    }
    out
}

/// One ordering edge: `from` held while acquiring `to`.
struct Edge {
    from: String,
    to: String,
    /// Node whose body carries the site.
    node: NodeId,
    line: usize,
    tok: usize,
    /// Callee the acquisition happens through, when cross-function.
    via: Option<NodeId>,
}

/// Closes the summaries over the call graph and reports ordering
/// cycles and guards held across blocking callees.
pub fn emit(files: &[FileCtx<'_, '_>], g: &CallGraph, locks: &[FnLocks]) -> Vec<Diagnostic> {
    let n = g.nodes.len();
    // Transitive acquired-class sets.
    let mut acq: Vec<BTreeSet<String>> =
        locks.iter().map(|l| l.acquires.iter().map(|a| a.class.clone()).collect()).collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut add = Vec::new();
            for site in &g.edges[id] {
                for c in &acq[site.callee] {
                    if !acq[id].contains(c) {
                        add.push(c.clone());
                    }
                }
            }
            for c in add {
                changed |= acq[id].insert(c);
            }
        }
        if !changed {
            break;
        }
    }
    // Transitive blocking sites: own first, else the first callee's.
    let mut blocking: Vec<Option<(String, String)>> = locks
        .iter()
        .enumerate()
        .map(|(id, l)| {
            l.blocking.as_ref().map(|(what, line)| {
                (what.clone(), format!("{}:{line}", files[g.nodes[id].file].input.rel))
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            if blocking[id].is_some() {
                continue;
            }
            let hit = g.edges[id].iter().find_map(|s| blocking[s.callee].clone());
            if hit.is_some() {
                blocking[id] = hit;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Ordering edges: intra-body nested pairs, plus guards held across
    // calls whose closure acquires further classes.
    let mut edges: Vec<Edge> = Vec::new();
    for (id, l) in locks.iter().enumerate() {
        for nst in &l.nested {
            edges.push(Edge {
                from: nst.first.clone(),
                to: nst.second.clone(),
                node: id,
                line: nst.line,
                tok: nst.tok,
                via: None,
            });
        }
        for hc in &l.held_calls {
            for to in &acq[hc.callee] {
                edges.push(Edge {
                    from: hc.class.clone(),
                    to: to.clone(),
                    node: id,
                    line: hc.line,
                    tok: hc.tok,
                    via: Some(hc.callee),
                });
            }
        }
    }
    // Class-level adjacency for cycle queries.
    let mut adj: Vec<(String, String)> = Vec::new();
    for e in &edges {
        if !adj.iter().any(|(a, b)| *a == e.from && *b == e.to) {
            adj.push((e.from.clone(), e.to.clone()));
        }
    }
    let reaches = |start: &str, target: &str| -> bool {
        let mut stack = vec![start];
        let mut seen: HashSet<&str> = HashSet::new();
        while let Some(x) = stack.pop() {
            for (a, b) in &adj {
                if a == x {
                    if b == target {
                        return true;
                    }
                    if seen.insert(b) {
                        stack.push(b);
                    }
                }
            }
        }
        false
    };

    let mut diags = Vec::new();
    let mut reported: HashSet<(usize, usize, String, String)> = HashSet::new();
    for e in &edges {
        if !reaches(&e.to, &e.from) {
            continue;
        }
        let f = &files[g.nodes[e.node].file];
        if !f.input.scope.lock_order
            || f.input.in_test(e.line)
            || f.input.allowed(e.line - 1, Rule::LockOrder)
        {
            continue;
        }
        if !reported.insert((g.nodes[e.node].file, e.line, e.from.clone(), e.to.clone())) {
            continue;
        }
        let t = f.toks[e.tok];
        let how = match e.via {
            Some(callee) => format!(
                "calling `{}`, whose call closure acquires `{}`",
                g.nodes[callee].name, e.to
            ),
            None => format!("acquiring `{}`", e.to),
        };
        let back = if e.from == e.to {
            "re-acquiring a held lock self-deadlocks".to_string()
        } else {
            format!(
                "elsewhere `{}` is held while `{}` is acquired, so two threads can deadlock",
                e.to, e.from
            )
        };
        diags.push(Diagnostic::spanned(
            f.input.rel,
            t.line,
            t.col,
            t.col + t.text.len(),
            Rule::LockOrder,
            format!(
                "lock-order cycle: guard on `{}` is live while {how}, and {back} — \
                 acquire the classes in one global order or narrow the first guard's \
                 scope (justify with `modelcheck-allow: lock-order`)",
                e.from
            ),
        ));
    }

    // Guards held across blocking callees.
    for (id, l) in locks.iter().enumerate() {
        let f = &files[g.nodes[id].file];
        if !f.input.scope.lock_order {
            continue;
        }
        for hc in &l.held_calls {
            let Some((what, site)) = &blocking[hc.callee] else { continue };
            if f.input.in_test(hc.line) || f.input.allowed(hc.line - 1, Rule::LockOrder) {
                continue;
            }
            if !reported.insert((g.nodes[id].file, hc.line, hc.class.clone(), "<blocking>".into()))
            {
                continue;
            }
            let t = f.toks[hc.tok];
            diags.push(Diagnostic::spanned(
                f.input.rel,
                t.line,
                t.col,
                t.col + t.text.len(),
                Rule::LockOrder,
                format!(
                    "guard on `{}` held across a call to `{}`, which blocks ({what} at {site}) — \
                     do the blocking work outside the critical section or justify with \
                     `modelcheck-allow: lock-order`",
                    hc.class, g.nodes[hc.callee].name
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::passes::FileInput;
    use crate::FileScope;

    fn scan(src: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", src, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        let files = [FileCtx { input: &input, toks: &toks, ast: &ast, crate_dir: None }];
        let g = CallGraph::build(&files);
        let locks = harvest(&files, &g);
        emit(&files, &g, &locks)
    }

    #[test]
    fn opposite_order_across_two_functions_is_a_cycle() {
        let src = "fn merge_even(&self) {\n\
                   \x20   let a = read_lock(&self.shards[0]);\n\
                   \x20   self.finish_even(&a);\n\
                   }\n\
                   fn finish_even(&self, a: &Shard) {\n\
                   \x20   let b = read_lock(&self.shards[1]);\n\
                   }\n\
                   fn merge_odd(&self) {\n\
                   \x20   let a = read_lock(&self.shards[1]);\n\
                   \x20   self.finish_odd(&a);\n\
                   }\n\
                   fn finish_odd(&self, a: &Shard) {\n\
                   \x20   let b = read_lock(&self.shards[0]);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 2, "one finding per direction: {d:?}");
        assert!(d[0].message.contains("lock-order cycle"), "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("finish_even")), "{d:?}");
    }

    #[test]
    fn consistent_order_across_functions_is_fine() {
        let src = "fn merge_even(&self) {\n\
                   \x20   let a = read_lock(&self.shards[0]);\n\
                   \x20   self.finish_even(&a);\n\
                   }\n\
                   fn finish_even(&self, a: &Shard) {\n\
                   \x20   let b = read_lock(&self.shards[1]);\n\
                   }\n\
                   fn also_ordered(&self) {\n\
                   \x20   let a = read_lock(&self.shards[0]);\n\
                   \x20   let b = read_lock(&self.shards[1]);\n\
                   }\n";
        // The intra-body pair in `also_ordered` is lock-discipline's
        // finding, not lock-order's: same direction, no cycle.
        assert!(scan(src).iter().all(|d| d.rule != Rule::LockOrder), "{:?}", scan(src));
    }

    #[test]
    fn reacquiring_a_held_class_through_a_callee_self_deadlocks() {
        let src = "fn outer(&self) {\n\
                   \x20   let a = write_lock(&self.shards[0]);\n\
                   \x20   self.inner();\n\
                   }\n\
                   fn inner(&self) {\n\
                   \x20   let b = read_lock(&self.shards[0]);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("self-deadlocks"), "{d:?}");
    }

    #[test]
    fn guard_returning_helper_counts_as_an_acquisition() {
        let src = "impl Gw {\n\
                   \x20 fn seq_lock(&self) -> MutexGuard<'_, J> {\n\
                   \x20     self.seq.lock().unwrap_or_else(PoisonError::into_inner)\n\
                   \x20 }\n\
                   \x20 fn a(&self) {\n\
                   \x20     let g = self.seq_lock();\n\
                   \x20     let h = read_lock(&self.shards[0]);\n\
                   \x20 }\n\
                   \x20 fn b(&self) {\n\
                   \x20     let h = read_lock(&self.shards[0]);\n\
                   \x20     let g = self.seq_lock();\n\
                   \x20 }\n\
                   }\n";
        let d = scan(src);
        assert!(!d.is_empty(), "opposite seq/shard orders must cycle: {d:?}");
        assert!(d.iter().all(|x| x.message.contains("lock-order cycle")), "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("`seq`")), "{d:?}");
    }

    #[test]
    fn guard_across_blocking_callee_is_flagged() {
        let src = "fn publish(&self) {\n\
                   \x20   let g = read_lock(&self.shards[0]);\n\
                   \x20   self.append_all(&g);\n\
                   }\n\
                   fn append_all(&self, s: &Shard) {\n\
                   \x20   self.file.write_all(s.bytes()).ok();\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("which blocks"), "{d:?}");
        assert!(d[0].message.contains("write_all"), "{d:?}");
        assert_eq!(d[0].line, 3, "reported at the held call site");
    }

    #[test]
    fn blocking_callee_without_a_guard_is_fine() {
        let src = "fn publish(&self) {\n\
                   \x20   let bytes = self.snapshot();\n\
                   \x20   self.append_all(&bytes);\n\
                   }\n\
                   fn snapshot(&self) -> Vec<u8> { Vec::new() }\n\
                   fn append_all(&self, s: &[u8]) {\n\
                   \x20   self.file.write_all(s).ok();\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn allow_suppresses_and_tests_are_exempt() {
        let src = "fn on_report(&self) {\n\
                   \x20   let g = self.seq_lock();\n\
                   \x20   // modelcheck-allow: lock-order — journal append is the designed \
                   serialization point\n\
                   \x20   self.append_all(&g);\n\
                   }\n\
                   fn seq_lock(&self) -> MutexGuard<'_, J> {\n\
                   \x20   self.seq.lock().unwrap_or_else(PoisonError::into_inner)\n\
                   }\n\
                   fn append_all(&self, s: &J) {\n\
                   \x20   self.file.write_all(s.bytes()).ok();\n\
                   }\n";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }
}
