//! The `lock-discipline` pass: shard-lock hygiene for the concurrent
//! daemon, checked as a scope-tree walk over the parsed AST.
//!
//! Three things are diagnosed:
//!
//! 1. **Write lock in a read path.** A function annotated with a
//!    `// modelcheck: read-path` comment (on the `fn` line or in the
//!    comment/attribute block above it) promises to only ever take read
//!    locks; any `write_lock(`/`.write()` acquisition inside it is
//!    flagged.
//! 2. **Nested shard locks.** Acquiring a second lock while a guard
//!    from an earlier acquisition is still live is a lock-ordering /
//!    deadlock hazard (`RwLock` read-then-write on the same shard
//!    self-deadlocks under a waiting writer).
//! 3. **Guard held across I/O.** Socket and stream calls under a live
//!    guard turn a nanosecond critical section into a
//!    network-round-trip one; serialize the data out of the guard
//!    first.
//!
//! Guard liveness follows the block tree (v3 re-derived it from brace
//! counting): a `let`-bound guard lives until its enclosing block
//! closes (or an explicit `drop(name)`), an unbound temporary dies at
//! the end of its statement. Lock acquisition is recognized as the
//! repo's `read_lock(` / `write_lock(` helpers or argument-less
//! `.read()` / `.write()` method calls — `.write(buf)` on an
//! `io::Write` sink has arguments and is not a lock.

use super::FileInput;
use crate::ast::{Ast, BlockId, Span, StmtKind};
use crate::lexer::{TokKind, Token};
use crate::resolve::fn_annotated;
use crate::{Diagnostic, Rule};

/// Stream/socket methods that mean "doing I/O right now" when called
/// with a guard live. Channel `send`/`recv` are deliberately absent
/// (std mpsc sends don't block).
const IO_METHODS: [&str; 10] = [
    "write_all",
    "write_fmt",
    "flush",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "accept",
    "send_to",
    "recv_from",
];

/// Socket types whose very mention in a body is I/O-adjacent.
const SOCKET_TYPES: [&str; 3] = ["TcpStream", "TcpListener", "UdpSocket"];

struct Guard {
    /// Binding name when `let`-bound; `None` for a temporary.
    name: Option<String>,
    /// Block depth at acquisition (body entry is depth 1).
    depth: i64,
    /// 1-based line of the acquisition, for messages.
    line: usize,
}

/// If `toks[k]` is a lock acquisition, returns `(is_write, line)`.
pub(crate) fn acquisition_at(toks: &[&Token<'_>], k: usize) -> Option<(bool, usize)> {
    let t = toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    match t.text {
        "read_lock" | "write_lock" if toks.get(k + 1).is_some_and(|n| n.text == "(") => {
            Some((t.text == "write_lock", t.line))
        }
        "read" | "write"
            if k > 0
                && toks[k - 1].text == "."
                && toks.get(k + 1).is_some_and(|n| n.text == "(")
                && toks.get(k + 2).is_some_and(|n| n.text == ")") =>
        {
            Some((t.text == "write", t.line))
        }
        _ => None,
    }
}

/// Index one past the `)` matching the `(` at `toks[open]`.
pub(crate) fn after_call(toks: &[&Token<'_>], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// If the acquisition whose argument list opens at `toks[open]` is the
/// whole initializer of a `let` (the guard itself is what gets bound,
/// not a value read through it — `let g = read_lock(s);` yes,
/// `let n = read_lock(s).len();` no), returns the binding name.
/// `?` and trailing `.unwrap()`/`.expect(…)` are transparent.
pub(crate) fn binding_name(toks: &[&Token<'_>], k: usize, open: usize) -> Option<String> {
    let mut e = after_call(toks, open);
    loop {
        match toks.get(e).map(|t| t.text) {
            Some("?") => e += 1,
            Some(".")
                if toks.get(e + 1).is_some_and(|t| matches!(t.text, "unwrap" | "expect"))
                    && toks.get(e + 2).is_some_and(|t| t.text == "(") =>
            {
                e = after_call(toks, e + 2);
            }
            _ => break,
        }
    }
    if toks.get(e).map(|t| t.text) != Some(";") {
        return None; // part of a larger expression: the guard is a temporary
    }
    let mut j = k;
    while j > 0 {
        j -= 1;
        match toks[j].text {
            ";" | "{" | "}" => return None,
            "let" if toks[j].kind == TokKind::Ident => {
                let mut n = j + 1;
                while toks.get(n).is_some_and(|t| t.text == "mut") {
                    n += 1;
                }
                return toks
                    .get(n)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.to_string());
            }
            _ => {}
        }
        if k - j > 48 {
            return None; // statement-start not found nearby; treat as temporary
        }
    }
    None
}

/// If `toks[k]` begins an I/O mention, returns a short description.
pub(crate) fn io_at(toks: &[&Token<'_>], k: usize) -> Option<String> {
    let t = toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    if SOCKET_TYPES.contains(&t.text) {
        return Some(format!("`{}`", t.text));
    }
    if t.text == "io"
        && toks.get(k + 1).is_some_and(|n| n.text == ":")
        && toks.get(k + 2).is_some_and(|n| n.text == ":")
    {
        // `io::Error` / `io::ErrorKind` / `io::Result` are value and
        // type plumbing, not I/O being performed.
        let after = toks.get(k + 3).map(|n| n.text).unwrap_or("");
        if !matches!(after, "Error" | "ErrorKind" | "Result") {
            return Some(format!("`io::{after}`"));
        }
        return None;
    }
    if IO_METHODS.contains(&t.text)
        && k > 0
        && toks[k - 1].text == "."
        && toks.get(k + 1).is_some_and(|n| n.text == "(")
    {
        return Some(format!("`.{}(`", t.text));
    }
    None
}

struct Walker<'t, 'a, 'i> {
    input: &'i FileInput<'a>,
    toks: &'t [&'t Token<'a>],
    ast: &'t Ast,
    emit: bool,
    read_path: bool,
    guards: Vec<Guard>,
    depth: i64,
    last_io_line: usize,
    diags: Vec<Diagnostic>,
}

impl Walker<'_, '_, '_> {
    fn walk_block(&mut self, b: BlockId) {
        self.depth += 1;
        let stmts = self.ast.blocks[b].stmts.clone();
        for stmt in &stmts {
            let mut nested: Vec<BlockId> = Vec::new();
            match &stmt.kind {
                StmtKind::Item => continue, // nested fns are walked on their own
                StmtKind::Let { init: Some(e), .. } | StmtKind::Expr(e) => {
                    self.ast.blocks_of_expr(*e, &mut nested);
                }
                StmtKind::Let { .. } => {}
            }
            nested.sort_by_key(|&nb| self.ast.blocks[nb].open);
            self.scan_span(stmt.span, &nested);
            // Unbound temporaries die at statement end.
            let d = self.depth;
            self.guards.retain(|g| !(g.name.is_none() && g.depth == d));
        }
        self.depth -= 1;
        let d = self.depth;
        self.guards.retain(|g| g.depth <= d);
    }

    /// Scans a statement's tokens in source order, recursing into each
    /// nested block at its position so guard lifetimes stay accurate.
    fn scan_span(&mut self, span: Span, nested: &[BlockId]) {
        let mut ni = 0;
        let mut k = span.0;
        while k < span.1.min(self.toks.len()) {
            if ni < nested.len() && self.ast.blocks[nested[ni]].open == k {
                let close = self.ast.blocks[nested[ni]].close;
                self.walk_block(nested[ni]);
                ni += 1;
                k = close + 1;
                continue;
            }
            let t = self.toks[k];
            if t.text == "drop"
                && t.kind == TokKind::Ident
                && self.toks.get(k + 1).is_some_and(|n| n.text == "(")
                && self.toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
                && self.toks.get(k + 3).is_some_and(|n| n.text == ")")
            {
                let name = self.toks[k + 2].text;
                self.guards.retain(|g| g.name.as_deref() != Some(name));
                k += 4;
                continue;
            }
            if let Some((is_write, line)) = acquisition_at(self.toks, k) {
                let suppressed = !self.emit || self.input.allowed(line - 1, Rule::LockDiscipline);
                if is_write && self.read_path && !suppressed {
                    self.diags.push(Diagnostic::spanned(
                        self.input.rel,
                        line,
                        t.col,
                        t.col + t.text.len(),
                        Rule::LockDiscipline,
                        "write lock acquired in a `modelcheck: read-path` function — \
                         read paths must stay read-only"
                            .to_string(),
                    ));
                }
                if let Some(live) = self.guards.first() {
                    if !suppressed {
                        self.diags.push(Diagnostic::spanned(
                            self.input.rel,
                            line,
                            t.col,
                            t.col + t.text.len(),
                            Rule::LockDiscipline,
                            format!(
                                "second shard lock acquired while the guard from line {} \
                                 is still live — lock ordering / self-deadlock hazard; \
                                 close the first guard's scope or `drop` it first",
                                live.line
                            ),
                        ));
                    }
                }
                // Both acquisition forms have their `(` right after `toks[k]`.
                self.guards.push(Guard {
                    name: binding_name(self.toks, k, k + 1),
                    depth: self.depth,
                    line,
                });
            } else if !self.guards.is_empty() && t.line != self.last_io_line {
                if let Some(what) = io_at(self.toks, k) {
                    self.last_io_line = t.line;
                    let suppressed =
                        !self.emit || self.input.allowed(t.line - 1, Rule::LockDiscipline);
                    if !suppressed {
                        let live = &self.guards[0];
                        self.diags.push(Diagnostic::spanned(
                            self.input.rel,
                            t.line,
                            t.col,
                            t.col + t.text.len(),
                            Rule::LockDiscipline,
                            format!(
                                "{what} while the lock guard from line {} is live — \
                                 do the I/O outside the critical section",
                                live.line
                            ),
                        ));
                    }
                }
            }
            k += 1;
        }
    }
}

/// Runs the lock-discipline rules over every function body.
pub fn run(input: &FileInput<'_>, toks: &[&Token<'_>], ast: &Ast) -> Vec<Diagnostic> {
    if !input.scope.lock_discipline {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for f in &ast.fns {
        let Some(body) = f.body else { continue };
        let mut w = Walker {
            input,
            toks,
            ast,
            emit: !input.in_test(f.line),
            read_path: fn_annotated(input, f.line, "modelcheck: read-path"),
            guards: Vec::new(),
            depth: 0,
            last_io_line: 0,
            diags: Vec::new(),
        };
        w.walk_block(body);
        diags.append(&mut w.diags);
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::FileScope;

    fn scan(body: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", body, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        run(&input, &toks, &ast)
    }

    #[test]
    fn write_in_read_path_is_flagged() {
        let src = "// modelcheck: read-path\n\
                   fn machine_count(&self) -> usize {\n\
                   \x20   let g = write_lock(&self.shards[0]);\n\
                   \x20   g.len()\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("read-path"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn read_in_read_path_is_fine() {
        let src = "// modelcheck: read-path\n\
                   fn count(&self) -> usize { let g = read_lock(&self.shards[0]); g.len() }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn nested_acquisition_is_flagged_even_via_method_form() {
        let src = "fn cross(&self) {\n\
                   \x20   let a = self.shards[0].read();\n\
                   \x20   let b = self.shards[1].read();\n\
                   \x20   use_both(a, b);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("line 2"));
    }

    #[test]
    fn sequential_scoped_guards_are_fine() {
        // The real `with_profile` shape: read guard in an inner block,
        // write lock only after the block closes.
        let src = "fn with_profile(&self) {\n\
                   {\n\
                   \x20   let guard = read_lock(shard);\n\
                   \x20   if let Some(p) = guard.get() { return p; }\n\
                   }\n\
                   let mut guard = write_lock(shard);\n\
                   guard.insert();\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f(&self) {\n\
                   \x20   let a = read_lock(s0);\n\
                   \x20   drop(a);\n\
                   \x20   let b = write_lock(s1);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn f(&self) {\n\
                   \x20   let n = read_lock(s0).len();\n\
                   \x20   let b = read_lock(s1);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn guard_across_io_is_flagged() {
        let src = "fn handle(&self, out: &mut TcpStream) {\n\
                   \x20   let g = read_lock(shard);\n\
                   \x20   out.write_all(g.bytes()).ok();\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("write_all"), "{d:?}");
    }

    #[test]
    fn io_after_guard_scope_closes_is_fine() {
        let src = "fn handle(&self, out: &mut W) {\n\
                   \x20   let bytes = { let g = read_lock(shard); g.bytes() };\n\
                   \x20   out.write_all(&bytes).ok();\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn write_with_arguments_is_not_a_lock() {
        let src = "fn sink(&self, out: &mut W) { out.write(buf).ok(); out.write(b).ok(); }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn io_error_plumbing_is_not_io() {
        let src = "fn f(&self) -> io::Result<()> {\n\
                   \x20   let g = read_lock(shard);\n\
                   \x20   Err(io::Error::new(io::ErrorKind::Other, \"x\"))\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn allow_suppresses_and_tests_are_exempt() {
        let allowed = "fn f(&self) {\n\
                       \x20   let a = read_lock(s0);\n\
                       \x20   // modelcheck-allow: lock-discipline — ordered by shard index\n\
                       \x20   let b = read_lock(s1);\n\
                       }\n";
        assert!(scan(allowed).is_empty());
        let tested = "#[cfg(test)]\nmod t {\n\
                      fn f() { let a = read_lock(s0); let b = read_lock(s1); }\n\
                      }\n";
        assert!(scan(tested).is_empty());
    }
}
