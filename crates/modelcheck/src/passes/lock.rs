//! The `lock-discipline` pass: shard-lock hygiene for the concurrent
//! daemon, checked by walking each function body's token stream with a
//! guard-liveness state machine.
//!
//! Three things are diagnosed:
//!
//! 1. **Write lock in a read path.** A function annotated with a
//!    `// modelcheck: read-path` comment (on the `fn` line or in the
//!    comment/attribute block above it) promises to only ever take read
//!    locks; any `write_lock(`/`.write()` acquisition inside it is
//!    flagged.
//! 2. **Nested shard locks.** Acquiring a second lock while a guard
//!    from an earlier acquisition is still live is a lock-ordering /
//!    deadlock hazard (`RwLock` read-then-write on the same shard
//!    self-deadlocks under a waiting writer).
//! 3. **Guard held across I/O.** Socket and stream calls under a live
//!    guard turn a nanosecond critical section into a
//!    network-round-trip one; serialize the data out of the guard
//!    first.
//!
//! Guard liveness is tracked structurally, not by name resolution: a
//! `let`-bound guard lives until its enclosing brace closes (or an
//! explicit `drop(name)`), an unbound temporary dies at the next `;`
//! at its own depth. Lock acquisition is recognized as the repo's
//! `read_lock(` / `write_lock(` helpers or argument-less `.read()` /
//! `.write()` method calls — `.write(buf)` on an `io::Write` sink has
//! arguments and is not a lock.

use super::FileInput;
use crate::lexer::{TokKind, Token};
use crate::{Diagnostic, Rule};

/// Stream/socket methods that mean "doing I/O right now" when called
/// with a guard live. Channel `send`/`recv` are deliberately absent
/// (std mpsc sends don't block).
const IO_METHODS: [&str; 10] = [
    "write_all",
    "write_fmt",
    "flush",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "accept",
    "send_to",
    "recv_from",
];

/// Socket types whose very mention in a body is I/O-adjacent.
const SOCKET_TYPES: [&str; 3] = ["TcpStream", "TcpListener", "UdpSocket"];

struct Guard {
    /// Binding name when `let`-bound; `None` for a temporary.
    name: Option<String>,
    /// Brace depth at acquisition (body entry is depth 1).
    depth: i64,
    /// 1-based line of the acquisition, for messages.
    line: usize,
}

/// True when the function starting on 1-based `fn_line` is annotated
/// `// modelcheck: read-path`, either trailing on the line or in the
/// contiguous comment/attribute block above.
fn is_read_path(input: &FileInput<'_>, fn_line: usize) -> bool {
    let marker = "modelcheck: read-path";
    let idx = fn_line - 1;
    if input.raw_lines.get(idx).is_some_and(|l| l.contains(marker)) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = input.raw_lines[j].trim_start();
        if t.starts_with("//") || t.starts_with("#[") {
            if t.contains(marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// If `toks[k]` is a lock acquisition, returns `(is_write, line)`.
fn acquisition_at(toks: &[&Token<'_>], k: usize) -> Option<(bool, usize)> {
    let t = toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    match t.text {
        "read_lock" | "write_lock" if toks.get(k + 1).is_some_and(|n| n.text == "(") => {
            Some((t.text == "write_lock", t.line))
        }
        "read" | "write"
            if k > 0
                && toks[k - 1].text == "."
                && toks.get(k + 1).is_some_and(|n| n.text == "(")
                && toks.get(k + 2).is_some_and(|n| n.text == ")") =>
        {
            Some((t.text == "write", t.line))
        }
        _ => None,
    }
}

/// Index one past the `)` matching the `(` at `toks[open]`.
fn after_call(toks: &[&Token<'_>], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// If the acquisition whose argument list opens at `toks[open]` is the
/// whole initializer of a `let` (the guard itself is what gets bound,
/// not a value read through it — `let g = read_lock(s);` yes,
/// `let n = read_lock(s).len();` no), returns the binding name.
/// `?` and trailing `.unwrap()`/`.expect(…)` are transparent.
fn binding_name(toks: &[&Token<'_>], k: usize, open: usize) -> Option<String> {
    let mut e = after_call(toks, open);
    loop {
        match toks.get(e).map(|t| t.text) {
            Some("?") => e += 1,
            Some(".")
                if toks.get(e + 1).is_some_and(|t| matches!(t.text, "unwrap" | "expect"))
                    && toks.get(e + 2).is_some_and(|t| t.text == "(") =>
            {
                e = after_call(toks, e + 2);
            }
            _ => break,
        }
    }
    if toks.get(e).map(|t| t.text) != Some(";") {
        return None; // part of a larger expression: the guard is a temporary
    }
    let mut j = k;
    while j > 0 {
        j -= 1;
        match toks[j].text {
            ";" | "{" | "}" => return None,
            "let" if toks[j].kind == TokKind::Ident => {
                let mut n = j + 1;
                while toks.get(n).is_some_and(|t| t.text == "mut") {
                    n += 1;
                }
                return toks
                    .get(n)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.to_string());
            }
            _ => {}
        }
        if k - j > 48 {
            return None; // statement-start not found nearby; treat as temporary
        }
    }
    None
}

/// If `toks[k]` begins an I/O mention, returns a short description.
fn io_at(toks: &[&Token<'_>], k: usize) -> Option<String> {
    let t = toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    if SOCKET_TYPES.contains(&t.text) {
        return Some(format!("`{}`", t.text));
    }
    if t.text == "io"
        && toks.get(k + 1).is_some_and(|n| n.text == ":")
        && toks.get(k + 2).is_some_and(|n| n.text == ":")
    {
        // `io::Error` / `io::ErrorKind` / `io::Result` are value and
        // type plumbing, not I/O being performed.
        let after = toks.get(k + 3).map(|n| n.text).unwrap_or("");
        if !matches!(after, "Error" | "ErrorKind" | "Result") {
            return Some(format!("`io::{after}`"));
        }
        return None;
    }
    if IO_METHODS.contains(&t.text)
        && k > 0
        && toks[k - 1].text == "."
        && toks.get(k + 1).is_some_and(|n| n.text == "(")
    {
        return Some(format!("`.{}(`", t.text));
    }
    None
}

/// Runs the lock-discipline rules over every function body.
pub fn run(input: &FileInput<'_>) -> Vec<Diagnostic> {
    if !input.scope.lock_discipline || input.tokens.is_empty() {
        return Vec::new();
    }
    let toks = input.code_tokens();
    let mut diags = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `fn name` starts a function; `fn(` is a pointer type.
        let is_fn = toks[i].kind == TokKind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident);
        if !is_fn {
            i += 1;
            continue;
        }
        let fn_line = toks[i].line;
        // Find the body's opening brace; a `;` at bracket depth 0 first
        // means a bodyless declaration (trait method, extern).
        let mut j = i + 2;
        let mut bracket = 0i64;
        let mut open = None;
        while j < toks.len() {
            match toks[j].text {
                "(" | "[" => bracket += 1,
                ")" | "]" => bracket -= 1,
                "{" => {
                    open = Some(j);
                    break;
                }
                ";" if bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };

        let emit = !input.in_test(fn_line);
        let read_path = is_read_path(input, fn_line);
        let mut depth = 1i64;
        let mut guards: Vec<Guard> = Vec::new();
        let mut last_io_line = 0usize;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            let t = toks[k];
            match t.text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                ";" => guards.retain(|g| !(g.name.is_none() && g.depth == depth)),
                "drop"
                    if t.kind == TokKind::Ident
                        && toks.get(k + 1).is_some_and(|n| n.text == "(")
                        && toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
                        && toks.get(k + 3).is_some_and(|n| n.text == ")") =>
                {
                    let name = toks[k + 2].text;
                    guards.retain(|g| g.name.as_deref() != Some(name));
                }
                _ => {}
            }

            if let Some((is_write, line)) = acquisition_at(&toks, k) {
                let suppressed = !emit || input.allowed(line - 1, Rule::LockDiscipline);
                if is_write && read_path && !suppressed {
                    diags.push(Diagnostic::spanned(
                        input.rel,
                        line,
                        t.col,
                        t.col + t.text.len(),
                        Rule::LockDiscipline,
                        "write lock acquired in a `modelcheck: read-path` function — \
                         read paths must stay read-only"
                            .to_string(),
                    ));
                }
                if let Some(live) = guards.first() {
                    if !suppressed {
                        diags.push(Diagnostic::spanned(
                            input.rel,
                            line,
                            t.col,
                            t.col + t.text.len(),
                            Rule::LockDiscipline,
                            format!(
                                "second shard lock acquired while the guard from line {} \
                                 is still live — lock ordering / self-deadlock hazard; \
                                 close the first guard's scope or `drop` it first",
                                live.line
                            ),
                        ));
                    }
                }
                // Both acquisition forms have their `(` right after `toks[k]`.
                guards.push(Guard { name: binding_name(&toks, k, k + 1), depth, line });
            } else if !guards.is_empty() && t.line != last_io_line {
                if let Some(what) = io_at(&toks, k) {
                    last_io_line = t.line;
                    let suppressed = !emit || input.allowed(t.line - 1, Rule::LockDiscipline);
                    if !suppressed {
                        let live = &guards[0];
                        diags.push(Diagnostic::spanned(
                            input.rel,
                            t.line,
                            t.col,
                            t.col + t.text.len(),
                            Rule::LockDiscipline,
                            format!(
                                "{what} while the lock guard from line {} is live — \
                                 do the I/O outside the critical section",
                                live.line
                            ),
                        ));
                    }
                }
            }
            k += 1;
        }
        i = k;
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileScope;

    fn scan(body: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", body, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        run(&input)
    }

    #[test]
    fn write_in_read_path_is_flagged() {
        let src = "// modelcheck: read-path\n\
                   fn machine_count(&self) -> usize {\n\
                   \x20   let g = write_lock(&self.shards[0]);\n\
                   \x20   g.len()\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("read-path"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn read_in_read_path_is_fine() {
        let src = "// modelcheck: read-path\n\
                   fn count(&self) -> usize { let g = read_lock(&self.shards[0]); g.len() }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn nested_acquisition_is_flagged_even_via_method_form() {
        let src = "fn cross(&self) {\n\
                   \x20   let a = self.shards[0].read();\n\
                   \x20   let b = self.shards[1].read();\n\
                   \x20   use_both(a, b);\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("line 2"));
    }

    #[test]
    fn sequential_scoped_guards_are_fine() {
        // The real `with_profile` shape: read guard in an inner block,
        // write lock only after the block closes.
        let src = "fn with_profile(&self) {\n\
                   {\n\
                   \x20   let guard = read_lock(shard);\n\
                   \x20   if let Some(p) = guard.get() { return p; }\n\
                   }\n\
                   let mut guard = write_lock(shard);\n\
                   guard.insert();\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f(&self) {\n\
                   \x20   let a = read_lock(s0);\n\
                   \x20   drop(a);\n\
                   \x20   let b = write_lock(s1);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn f(&self) {\n\
                   \x20   let n = read_lock(s0).len();\n\
                   \x20   let b = read_lock(s1);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn guard_across_io_is_flagged() {
        let src = "fn handle(&self, out: &mut TcpStream) {\n\
                   \x20   let g = read_lock(shard);\n\
                   \x20   out.write_all(g.bytes()).ok();\n\
                   }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("write_all"), "{d:?}");
    }

    #[test]
    fn io_after_guard_scope_closes_is_fine() {
        let src = "fn handle(&self, out: &mut W) {\n\
                   \x20   let bytes = { let g = read_lock(shard); g.bytes() };\n\
                   \x20   out.write_all(&bytes).ok();\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn write_with_arguments_is_not_a_lock() {
        let src = "fn sink(&self, out: &mut W) { out.write(buf).ok(); out.write(b).ok(); }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn io_error_plumbing_is_not_io() {
        let src = "fn f(&self) -> io::Result<()> {\n\
                   \x20   let g = read_lock(shard);\n\
                   \x20   Err(io::Error::new(io::ErrorKind::Other, \"x\"))\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn allow_suppresses_and_tests_are_exempt() {
        let allowed = "fn f(&self) {\n\
                       \x20   let a = read_lock(s0);\n\
                       \x20   // modelcheck-allow: lock-discipline — ordered by shard index\n\
                       \x20   let b = read_lock(s1);\n\
                       }\n";
        assert!(scan(allowed).is_empty());
        let tested = "#[cfg(test)]\nmod t {\n\
                      fn f() { let a = read_lock(s0); let b = read_lock(s1); }\n\
                      }\n";
        assert!(scan(tested).is_empty());
    }
}
