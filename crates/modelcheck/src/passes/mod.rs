//! The analysis passes and the shared per-file input they run over.
//!
//! [`FileInput::build`] lexes a file once and derives everything every
//! pass needs: the raw lines (for allow comments and doc detection), a
//! *code view* of each line with comment bytes blanked out (so textual
//! rules never fire on prose, even in block comments or after `//`
//! hidden inside a string), the per-line `modelcheck-allow` grants, the
//! `#[cfg(test)]` mask, and the token stream itself. If the lexer fails
//! the pass degrades to the v2 line scanner (cut each line at the first
//! `//`) and a [`crate::Rule::Lex`] diagnostic records the failure.

pub mod atomics;
pub mod drift;
pub mod event_loop;
pub mod float_env;
pub mod lock;
pub mod lock_order;
pub mod taint;
pub mod textual;

use crate::lexer::{lex, TokKind, Token};
use crate::{Diagnostic, FileScope, Rule};

/// Everything the per-file passes share, computed once per file.
pub struct FileInput<'a> {
    /// Workspace-relative path used in diagnostics.
    pub rel: &'a str,
    /// The file's lines, verbatim.
    pub raw_lines: Vec<&'a str>,
    /// The file's lines with every comment byte blanked to a space
    /// (string contents are preserved — signatures like `extern "C"`
    /// must stay visible).
    pub code_lines: Vec<String>,
    /// `allows[i]` is the rule name granted on 0-based line `i`, if any.
    pub allows: Vec<Option<String>>,
    /// `test_mask[i]` is true when 0-based line `i` sits inside a
    /// `#[cfg(test)]`-gated item.
    pub test_mask: Vec<bool>,
    /// The token stream; empty when lexing failed.
    pub tokens: Vec<Token<'a>>,
    /// The rules in force for this file.
    pub scope: FileScope,
}

impl<'a> FileInput<'a> {
    /// Lexes `text` and assembles the shared pass input. The returned
    /// diagnostics are lex failures (at most one), not rule findings.
    pub fn build(
        rel: &'a str,
        text: &'a str,
        scope: FileScope,
    ) -> (FileInput<'a>, Vec<Diagnostic>) {
        let raw_lines: Vec<&str> = text.lines().collect();
        let mut diags = Vec::new();
        let (tokens, code_lines) = match lex(text) {
            Ok(tokens) => {
                let code = blank_comments(text, &tokens);
                (tokens, code)
            }
            Err(e) => {
                diags.push(Diagnostic::spanned(
                    rel,
                    e.line,
                    e.col,
                    e.col + 1,
                    Rule::Lex,
                    format!("file does not lex ({}); falling back to line scanning", e.message),
                ));
                (Vec::new(), raw_lines.iter().map(|l| code_part(l).to_string()).collect())
            }
        };
        let allows = collect_allows(&raw_lines);
        let test_mask = cfg_test_mask(&code_lines);
        (FileInput { rel, raw_lines, code_lines, allows, test_mask, tokens, scope }, diags)
    }

    /// True when 0-based line `i` carries an allow for `rule`: on the
    /// line itself, or anywhere in the contiguous comment block
    /// directly above it (so a justification can take several lines).
    pub fn allowed(&self, i: usize, rule: Rule) -> bool {
        let hit = |j: usize| self.allows.get(j).and_then(Option::as_deref) == Some(rule.name());
        if hit(i) {
            return true;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = self.raw_lines.get(j).map_or("", |l| l.trim_start());
            if !(t.starts_with("//") || t.starts_with("#[")) {
                return false;
            }
            if hit(j) {
                return true;
            }
        }
        false
    }

    /// True when 1-based line `line` is inside a `#[cfg(test)]` block.
    pub fn in_test(&self, line: usize) -> bool {
        line >= 1 && self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// The non-comment tokens, in source order.
    pub fn code_tokens(&self) -> Vec<&Token<'a>> {
        self.tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect()
    }
}

/// Rebuilds the file's lines with every comment token's bytes replaced
/// by spaces (newlines kept, so line numbering is unchanged).
fn blank_comments(text: &str, tokens: &[Token<'_>]) -> Vec<String> {
    let mut bytes = text.as_bytes().to_vec();
    for t in tokens {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            for b in &mut bytes[t.start..t.end] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    }
    // Only ASCII bytes were rewritten (whole comment spans cover whole
    // chars), so the buffer is still valid UTF-8.
    String::from_utf8(bytes)
        .unwrap_or_else(|_| text.to_string())
        .lines()
        .map(str::to_string)
        .collect()
}

/// The v2 fallback code view: everything before the first `//`.
pub(crate) fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Per-line allow annotations: `allows[i]` is the rule name granted on
/// line `i` (0-based), if any.
fn collect_allows(lines: &[&str]) -> Vec<Option<String>> {
    lines
        .iter()
        .map(|line| {
            let marker = "modelcheck-allow:";
            let at = line.find(marker)?;
            let rest = line[at + marker.len()..].trim_start();
            let name: String =
                rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
            if name.is_empty() {
                None
            } else {
                Some(name)
            }
        })
        .collect()
}

/// Marks every line inside a `#[cfg(test)]`-gated item by brace counting
/// from the attribute to the close of the block it opens. Operates on
/// the comment-blanked code view, so a comment mentioning the attribute
/// does not start a mask.
fn cfg_test_mask(code_lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        if !code_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < code_lines.len() {
            mask[j] = true;
            for c in code_lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// True when `needle` occurs in `hay` with non-identifier characters (or
/// the string boundary) on both sides — so `f64` does not match inside
/// `f64_from_u64`.
pub(crate) fn contains_token(hay: &str, needle: &str) -> bool {
    find_token(hay, needle).is_some()
}

pub(crate) fn find_token(hay: &str, needle: &str) -> Option<usize> {
    token_positions(hay, needle).first().copied()
}

/// Every token-boundary occurrence of `needle` in `hay`.
pub(crate) fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before = start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            found.push(start);
        }
        from = start + 1;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_view_blanks_block_and_line_comments_but_keeps_strings() {
        let text = "let a = 1; /* panic! */ // more\nlet s = \"x // y\";\n";
        let (input, diags) = FileInput::build("a.rs", text, FileScope::ALL);
        assert!(diags.is_empty());
        assert!(!input.code_lines[0].contains("panic"));
        assert!(!input.code_lines[0].contains("more"));
        assert!(input.code_lines[0].contains("let a = 1;"));
        assert!(input.code_lines[1].contains("\"x // y\""));
    }

    #[test]
    fn multiline_block_comment_blanks_every_line() {
        let text = "a\n/*\nx.unwrap()\n*/\nb\n";
        let (input, _) = FileInput::build("a.rs", text, FileScope::ALL);
        assert_eq!(input.code_lines.len(), 5);
        assert!(input.code_lines[2].trim().is_empty());
        assert_eq!(input.code_lines[4], "b");
    }

    #[test]
    fn lex_failure_degrades_with_a_diagnostic() {
        let text = "let s = \"never closed;\n";
        let (input, diags) = FileInput::build("a.rs", text, FileScope::ALL);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::Lex);
        assert!(input.tokens.is_empty());
        assert_eq!(input.code_lines.len(), 1);
    }

    #[test]
    fn cfg_test_mask_ignores_comment_mentions() {
        let text = "// #[cfg(test)] would mask\nfn f() {}\n#[cfg(test)]\nmod t {\n}\n";
        let (input, _) = FileInput::build("a.rs", text, FileScope::ALL);
        assert!(!input.test_mask[0] && !input.test_mask[1]);
        assert!(input.test_mask[2] && input.test_mask[3] && input.test_mask[4]);
    }
}
