//! The `atomics` pass: memory-ordering hygiene for the relaxed-atomic
//! metrics and shutdown plumbing.
//!
//! Two rules:
//!
//! 1. **Strong orderings need a reason.** `Ordering::SeqCst` and
//!    `Ordering::AcqRel` are global-synchronization sledgehammers; in a
//!    codebase whose hot path is deliberately `Relaxed`, each use must
//!    carry a `modelcheck-allow: atomics` comment saying what it
//!    synchronizes (e.g. a shutdown flag that must be seen before the
//!    wake connection).
//! 2. **No torn read-modify-write.** `x.store(x.load(..) + 1, ..)` on
//!    an atomic loses updates under concurrency; the pass flags any
//!    `.store(` call whose argument span contains a `.load(` call (both
//!    read straight off the AST's call table) — use
//!    `fetch_add`/`fetch_max` instead.

use super::FileInput;
use crate::ast::Ast;
use crate::lexer::{TokKind, Token};
use crate::{Diagnostic, Rule};

/// Runs the atomics rules over the parsed file.
pub fn run(input: &FileInput<'_>, toks: &[&Token<'_>], ast: &Ast) -> Vec<Diagnostic> {
    if !input.scope.atomics {
        return Vec::new();
    }
    let mut diags = Vec::new();
    // Rule 1: strong-ordering mentions, straight off the tokens (an
    // ordering is a path expression, not a call).
    for t in toks {
        if t.kind != TokKind::Ident || input.in_test(t.line) {
            continue;
        }
        if matches!(t.text, "SeqCst" | "AcqRel") && !input.allowed(t.line - 1, Rule::Atomics) {
            diags.push(Diagnostic::spanned(
                input.rel,
                t.line,
                t.col,
                t.col + t.text.len(),
                Rule::Atomics,
                format!(
                    "`Ordering::{}` — strong orderings need a \
                     `modelcheck-allow: atomics` comment stating what they \
                     synchronize (the hot path is Relaxed by design)",
                    t.text
                ),
            ));
        }
    }
    // Rule 2: a `.store(…)` whose arguments contain a `.load(…)`.
    for c in &ast.calls {
        if !c.is_method || toks[c.name_tok].text != "store" {
            continue;
        }
        let t = toks[c.name_tok];
        if input.in_test(t.line) || input.allowed(t.line - 1, Rule::Atomics) {
            continue;
        }
        let torn = ast
            .calls_in(c.args)
            .iter()
            .any(|inner| inner.is_method && toks[inner.name_tok].text == "load");
        if torn {
            diags.push(Diagnostic::spanned(
                input.rel,
                t.line,
                t.col,
                t.col + t.text.len(),
                Rule::Atomics,
                "`.store(… .load(…) …)` is a non-atomic \
                 read-modify-write and loses updates — use \
                 `fetch_add`/`fetch_max`/`compare_exchange`"
                    .to_string(),
            ));
        }
    }
    diags.sort_by_key(|d| (d.line, d.col));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::FileScope;

    fn scan(body: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", body, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        let toks = input.code_tokens();
        let ast = parse(&toks).expect("parses");
        run(&input, &toks, &ast)
    }

    #[test]
    fn seqcst_needs_a_justification() {
        let d = scan("fn f(b: &AtomicBool) { b.store(true, Ordering::SeqCst); }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SeqCst"));
        let ok = "fn f(b: &AtomicBool) {\n\
                  \x20   // modelcheck-allow: atomics — shutdown flag must be visible before wake\n\
                  \x20   b.store(true, Ordering::SeqCst);\n\
                  }\n";
        assert!(scan(ok).is_empty());
    }

    #[test]
    fn acqrel_is_also_strong() {
        assert_eq!(scan("fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::AcqRel); }\n").len(), 1);
    }

    #[test]
    fn relaxed_is_free() {
        assert!(scan("fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::Relaxed); }\n").is_empty());
    }

    #[test]
    fn store_of_load_plus_one_is_a_torn_rmw() {
        let d = scan(
            "fn f(n: &AtomicU64) { n.store(n.load(Ordering::Relaxed) + 1, Ordering::Relaxed); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("read-modify-write"));
    }

    #[test]
    fn independent_store_and_load_are_fine() {
        let src = "fn f(n: &AtomicU64) {\n\
                   \x20   let v = n.load(Ordering::Relaxed);\n\
                   \x20   n.store(0, Ordering::Relaxed);\n\
                   \x20   use_it(v);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod t {\n\
                   fn f(b: &AtomicBool) { b.store(true, Ordering::SeqCst); }\n\
                   }\n";
        assert!(scan(src).is_empty());
    }
}
