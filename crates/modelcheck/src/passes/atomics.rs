//! The `atomics` pass: memory-ordering hygiene for the relaxed-atomic
//! metrics and shutdown plumbing.
//!
//! Two rules:
//!
//! 1. **Strong orderings need a reason.** `Ordering::SeqCst` and
//!    `Ordering::AcqRel` are global-synchronization sledgehammers; in a
//!    codebase whose hot path is deliberately `Relaxed`, each use must
//!    carry a `modelcheck-allow: atomics` comment saying what it
//!    synchronizes (e.g. a shutdown flag that must be seen before the
//!    wake connection).
//! 2. **No torn read-modify-write.** `x.store(x.load(..) + 1, ..)` on
//!    an atomic loses updates under concurrency; the pass flags any
//!    `.store(` whose argument expression contains a `.load(` call —
//!    use `fetch_add`/`fetch_max` instead.

use super::FileInput;
use crate::lexer::TokKind;
use crate::{Diagnostic, Rule};

/// Runs the atomics rules over the token stream.
pub fn run(input: &FileInput<'_>) -> Vec<Diagnostic> {
    if !input.scope.atomics || input.tokens.is_empty() {
        return Vec::new();
    }
    let toks = input.code_tokens();
    let mut diags = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || input.in_test(t.line) {
            continue;
        }
        match t.text {
            "SeqCst" | "AcqRel" if !input.allowed(t.line - 1, Rule::Atomics) => {
                diags.push(Diagnostic::spanned(
                    input.rel,
                    t.line,
                    t.col,
                    t.col + t.text.len(),
                    Rule::Atomics,
                    format!(
                        "`Ordering::{}` — strong orderings need a \
                         `modelcheck-allow: atomics` comment stating what they \
                         synchronize (the hot path is Relaxed by design)",
                        t.text
                    ),
                ));
            }
            "store"
                if k > 0
                    && toks[k - 1].text == "."
                    && toks.get(k + 1).is_some_and(|n| n.text == "(") =>
            {
                // Walk the store's argument list; a `.load(` inside it
                // is a lost-update read-modify-write.
                let mut depth = 0i64;
                let mut j = k + 1;
                while j < toks.len() {
                    match toks[j].text {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "load"
                            if toks[j].kind == TokKind::Ident
                                && toks[j - 1].text == "."
                                && toks.get(j + 1).is_some_and(|n| n.text == "(") =>
                        {
                            if !input.allowed(t.line - 1, Rule::Atomics) {
                                diags.push(Diagnostic::spanned(
                                    input.rel,
                                    t.line,
                                    t.col,
                                    t.col + t.text.len(),
                                    Rule::Atomics,
                                    "`.store(… .load(…) …)` is a non-atomic \
                                     read-modify-write and loses updates — use \
                                     `fetch_add`/`fetch_max`/`compare_exchange`"
                                        .to_string(),
                                ));
                            }
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {}
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileScope;

    fn scan(body: &str) -> Vec<Diagnostic> {
        let (input, diags) = FileInput::build("x.rs", body, FileScope::ALL);
        assert!(diags.is_empty(), "{diags:?}");
        run(&input)
    }

    #[test]
    fn seqcst_needs_a_justification() {
        let d = scan("fn f(b: &AtomicBool) { b.store(true, Ordering::SeqCst); }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SeqCst"));
        let ok = "fn f(b: &AtomicBool) {\n\
                  \x20   // modelcheck-allow: atomics — shutdown flag must be visible before wake\n\
                  \x20   b.store(true, Ordering::SeqCst);\n\
                  }\n";
        assert!(scan(ok).is_empty());
    }

    #[test]
    fn acqrel_is_also_strong() {
        assert_eq!(scan("fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::AcqRel); }\n").len(), 1);
    }

    #[test]
    fn relaxed_is_free() {
        assert!(scan("fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::Relaxed); }\n").is_empty());
    }

    #[test]
    fn store_of_load_plus_one_is_a_torn_rmw() {
        let d = scan(
            "fn f(n: &AtomicU64) { n.store(n.load(Ordering::Relaxed) + 1, Ordering::Relaxed); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("read-modify-write"));
    }

    #[test]
    fn independent_store_and_load_are_fine() {
        let src = "fn f(n: &AtomicU64) {\n\
                   \x20   let v = n.load(Ordering::Relaxed);\n\
                   \x20   n.store(0, Ordering::Relaxed);\n\
                   \x20   use_it(v);\n\
                   }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod t {\n\
                   fn f(b: &AtomicBool) { b.store(true, Ordering::SeqCst); }\n\
                   }\n";
        assert!(scan(src).is_empty());
    }
}
