//! The `float-env` pass: bit-level float access stays in `units.rs`.
//!
//! The model's proptests pin *bit-identical* equivalence between the
//! cached and direct evaluation paths, and the shard-keying code hashes
//! `f64::to_bits`. Both only stay sound while bit-level float access is
//! centralized: scattered `to_bits`/`from_bits` or ad-hoc
//! `f64::EPSILON` comparisons quietly re-introduce representation
//! assumptions the units layer exists to own. Outside `units.rs`, each
//! use needs a `modelcheck-allow: float-env` justification.

use super::FileInput;
use crate::lexer::TokKind;
use crate::{Diagnostic, Rule};

/// Runs the float-env rule over the token stream.
pub fn run(input: &FileInput<'_>) -> Vec<Diagnostic> {
    if !input.scope.float_env || input.tokens.is_empty() {
        return Vec::new();
    }
    let toks = input.code_tokens();
    let mut diags = Vec::new();
    for t in &toks {
        if t.kind != TokKind::Ident || input.in_test(t.line) {
            continue;
        }
        let why = match t.text {
            "to_bits" | "from_bits" => "bit-level float access",
            "EPSILON" => "machine-epsilon comparison",
            _ => continue,
        };
        if input.allowed(t.line - 1, Rule::FloatEnv) {
            continue;
        }
        diags.push(Diagnostic::spanned(
            input.rel,
            t.line,
            t.col,
            t.col + t.text.len(),
            Rule::FloatEnv,
            format!(
                "{why} (`{}`) outside `units.rs` — centralize representation \
                 assumptions in the units layer or justify with a \
                 `modelcheck-allow: float-env` comment",
                t.text
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileScope;

    fn scan(rel: &str, body: &str) -> Vec<Diagnostic> {
        let scope = FileScope::ALL.for_file(rel);
        let (input, diags) = FileInput::build(rel, body, scope);
        assert!(diags.is_empty(), "{diags:?}");
        run(&input)
    }

    #[test]
    fn to_bits_outside_units_is_flagged() {
        let d = scan("crates/x/src/lib.rs", "fn key(x: f64) -> u64 { x.to_bits() }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::FloatEnv);
    }

    #[test]
    fn units_module_is_exempt() {
        assert!(scan("crates/x/src/units.rs", "fn key(x: f64) -> u64 { x.to_bits() }\n").is_empty());
    }

    #[test]
    fn epsilon_comparison_is_flagged_but_allow_works() {
        assert_eq!(
            scan(
                "crates/x/src/lib.rs",
                "fn close(a: f64, b: f64) -> bool { (a - b).abs() < f64::EPSILON }\n"
            )
            .len(),
            1
        );
        let ok = "// modelcheck-allow: float-env — convergence check, bound documented\n\
                  fn close(a: f64, b: f64) -> bool { (a - b).abs() < f64::EPSILON }\n";
        assert!(scan("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn prose_and_tests_are_exempt() {
        let prose = "// to_bits would be wrong here\nfn f() {}\n";
        assert!(scan("crates/x/src/lib.rs", prose).is_empty());
        let tested = "#[cfg(test)]\nmod t {\nfn f(x: f64) { x.to_bits(); }\n}\n";
        assert!(scan("crates/x/src/lib.rs", tested).is_empty());
    }
}
