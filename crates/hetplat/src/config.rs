//! Platform parameter sets.
//!
//! All micro-level costs of the simulated machines live here. The presets
//! are sized to resemble the paper's 1996 hardware (a Sun 4-class
//! workstation front-end, a CM-2 behind a dedicated channel, a Paragon
//! behind a 10 Mbit/s Ethernet) without claiming cycle accuracy: the
//! reproduction targets the *shape* of the paper's results, and every
//! experiment calibrates the analytical model against the same simulated
//! platform it predicts.

use serde::{Deserialize, Serialize};
use simcore::num::f64_from_u64;
use simcore::time::SimDuration;

/// Which CPU scheduler the front-end runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Ideal processor sharing (the model's own idealization).
    ProcessorSharing,
    /// Quantum round-robin with context-switch overhead (default; the
    /// "actual" machine the model is validated against).
    RoundRobin,
}

/// Front-end workstation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontendParams {
    /// Scheduler flavour.
    pub scheduler: SchedulerKind,
    /// Round-robin quantum.
    pub quantum: SimDuration,
    /// Context-switch cost charged when the dispatched job changes.
    pub ctx_switch: SimDuration,
}

impl Default for FrontendParams {
    fn default() -> Self {
        FrontendParams {
            scheduler: SchedulerKind::RoundRobin,
            // SunOS-era defaults: 20 ms quantum, 100 µs switch.
            quantum: SimDuration::from_millis(20),
            ctx_switch: SimDuration::from_micros(100),
        }
    }
}

impl FrontendParams {
    /// The idealized processor-sharing variant (ablation).
    pub fn processor_sharing() -> Self {
        FrontendParams { scheduler: SchedulerKind::ProcessorSharing, ..Default::default() }
    }
}

/// CM2 back-end parameters. Transfers between the front-end and the CM2
/// are element-by-element operations *driven by the front-end CPU*, which
/// is why front-end contention slows them down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cm2Params {
    /// Front-end CPU time to start one message toward the CM2 (`α_sun`).
    pub xfer_alpha_to: SimDuration,
    /// Front-end CPU time per word moved toward the CM2 (`1/β_sun`).
    pub xfer_per_word_to: SimDuration,
    /// Front-end CPU time to start one message from the CM2 (`α_cm2`).
    pub xfer_alpha_from: SimDuration,
    /// Front-end CPU time per word moved from the CM2 (`1/β_cm2`).
    pub xfer_per_word_from: SimDuration,
    /// Front-end CPU time to issue one parallel instruction to the
    /// sequencer (part of the serial stream).
    pub instr_dispatch: SimDuration,
}

impl Default for Cm2Params {
    fn default() -> Self {
        Cm2Params {
            xfer_alpha_to: SimDuration::from_micros(500),
            // β_sun ≈ 5 × 10⁵ words/s toward the CM2.
            xfer_per_word_to: SimDuration::from_nanos(2_000),
            xfer_alpha_from: SimDuration::from_micros(800),
            // β_cm2 ≈ 2.5 × 10⁵ words/s back to the front-end.
            xfer_per_word_from: SimDuration::from_nanos(4_000),
            instr_dispatch: SimDuration::from_micros(50),
        }
    }
}

/// How messages reach the Paragon's compute nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommPath {
    /// 1-HOP: TCP/IP directly from the front-end to each compute node.
    OneHop,
    /// 2-HOPS: TCP/IP to a service node, which forwards over NX.
    TwoHops,
}

/// Ethernet + Paragon communication parameters.
///
/// The wire implements two protocol regimes around `eager_limit_words`
/// (an eager send below, a handshaked rendezvous above, with better
/// streaming bandwidth). This is the micro-level mechanism from which the
/// paper's *piecewise-linear* dedicated cost emerges under calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParagonParams {
    /// Message path used by the platform.
    pub path: CommPath,
    /// Wire latency per message.
    pub wire_latency: SimDuration,
    /// Protocol switch point, in words (real platform: 1024).
    pub eager_limit_words: u64,
    /// Streaming rate below the eager limit, words/second.
    pub bw_small: f64,
    /// Streaming rate above the eager limit, words/second.
    pub bw_large: f64,
    /// Extra per-message handshake above the eager limit.
    pub rendezvous_overhead: SimDuration,
    /// Front-end CPU time per message for data-format conversion.
    pub conv_alpha: SimDuration,
    /// Front-end CPU time per word to convert and copy an *outgoing*
    /// message (XDR-style marshalling was expensive on 1996 workstations —
    /// comparable to the per-word wire cost).
    pub conv_per_word_out: SimDuration,
    /// Front-end CPU time per word on the *receive* side while the
    /// message fits the network buffer cluster: interrupt handling,
    /// checksumming, kernel→user copy, and XDR decode all land on the
    /// receiving host.
    pub conv_per_word_in: SimDuration,
    /// Words that fit the receive buffer cluster (mbuf-chain style);
    /// beyond it every word pays [`Self::conv_per_word_in_overflow`].
    pub conv_cluster_words: u64,
    /// Per-word receive cost beyond the buffer cluster — extra copies and
    /// buffer-chain walking make large messages disproportionately CPU
    /// hungry. This is the mechanism behind the paper's observation that
    /// the computation delay grows with contender message size and
    /// saturates around 1000 words (`delay_commⁱʲ`).
    pub conv_per_word_in_overflow: SimDuration,
    /// Outbound send window: how many messages may be between conversion
    /// and delivery at once. 1 models a blocking (stop-and-wait) send;
    /// large values approach a fully pipelined sender.
    pub send_window: u64,
    /// Processor-sharing weight of receive-side protocol processing.
    /// Interrupt handling and kernel copies preempt ordinary timesharing
    /// jobs, so inbound conversion runs at an elevated weight; 1.0 would
    /// make it an ordinary user job. This is what lets a contender moving
    /// large messages slow a computation by far more than fair sharing
    /// would — the superlinear part of `delay_commⁱʲ`.
    pub recv_kernel_weight: f64,
    /// Compute-node receive/send software overhead per message.
    pub node_overhead: SimDuration,
    /// Gap between successive message emissions by a compute node.
    pub node_emit_gap: SimDuration,
    /// Service-node NX forwarding cost per message (2-HOPS only).
    pub nx_per_message: SimDuration,
    /// Service-node NX forwarding cost per word (2-HOPS only).
    pub nx_per_word: SimDuration,
}

impl Default for ParagonParams {
    fn default() -> Self {
        ParagonParams {
            path: CommPath::OneHop,
            wire_latency: SimDuration::from_micros(1_000),
            eager_limit_words: 1024,
            // 10 Mbit/s Ethernet ≈ 312 k 4-byte words/s peak; protocol
            // overheads push the small-message regime well below that.
            bw_small: 150_000.0,
            bw_large: 280_000.0,
            rendezvous_overhead: SimDuration::from_micros(4_000),
            conv_alpha: SimDuration::from_micros(300),
            conv_per_word_out: SimDuration::from_nanos(6_000),
            conv_per_word_in: SimDuration::from_nanos(4_000),
            conv_cluster_words: 600,
            conv_per_word_in_overflow: SimDuration::from_nanos(16_000),
            send_window: 1,
            recv_kernel_weight: 3.0,
            node_overhead: SimDuration::from_micros(300),
            node_emit_gap: SimDuration::from_micros(500),
            nx_per_message: SimDuration::from_micros(400),
            nx_per_word: SimDuration::from_nanos(200),
        }
    }
}

impl ParagonParams {
    /// The 2-HOPS (service-node bridge) variant of these parameters.
    pub fn two_hops(mut self) -> Self {
        self.path = CommPath::TwoHops;
        self
    }

    /// Wire service time for one message of `words` words.
    pub fn wire_service(&self, words: u64) -> SimDuration {
        if words <= self.eager_limit_words {
            self.wire_latency + SimDuration::from_secs_f64(f64_from_u64(words) / self.bw_small)
        } else {
            self.wire_latency
                + self.rendezvous_overhead
                + SimDuration::from_secs_f64(f64_from_u64(words) / self.bw_large)
        }
    }

    /// NX forwarding service time for one message (2-HOPS).
    pub fn nx_service(&self, words: u64) -> SimDuration {
        self.nx_per_message + self.nx_per_word * words
    }

    /// Front-end conversion CPU demand for one outgoing message.
    pub fn conv_demand_out(&self, words: u64) -> SimDuration {
        self.conv_alpha + self.conv_per_word_out * words
    }

    /// Front-end conversion CPU demand for one incoming message.
    pub fn conv_demand_in(&self, words: u64) -> SimDuration {
        let in_cluster = words.min(self.conv_cluster_words);
        let overflow = words.saturating_sub(self.conv_cluster_words);
        self.conv_alpha
            + self.conv_per_word_in * in_cluster
            + self.conv_per_word_in_overflow * overflow
    }
}

/// Local disk parameters (for the I/O-operations extension of §4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Positioning time per operation (seek + rotational latency).
    pub seek: SimDuration,
    /// Streaming transfer rate, words per second.
    pub rate: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        // A mid-90s SCSI disk: ~12 ms positioning, ~1 M words/s stream.
        DiskParams { seek: SimDuration::from_millis(12), rate: 1.0e6 }
    }
}

impl DiskParams {
    /// Service time for one I/O of `words` words.
    pub fn service(&self, words: u64) -> SimDuration {
        self.seek + SimDuration::from_secs_f64(f64_from_u64(words) / self.rate)
    }
}

/// Complete platform description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PlatformConfig {
    /// Front-end workstation.
    pub frontend: FrontendParams,
    /// CM2 back-end parameters (used by CM2 phases).
    pub cm2: Cm2Params,
    /// Paragon/link parameters (used by Paragon phases).
    pub paragon: ParagonParams,
    /// Local disk (used by `Phase::DiskIo`).
    pub disk: DiskParams,
}

impl PlatformConfig {
    /// The Sun/CM2 preset.
    pub fn sun_cm2() -> Self {
        PlatformConfig::default()
    }

    /// The Sun/Paragon preset with the 1-HOP path.
    pub fn sun_paragon() -> Self {
        PlatformConfig::default()
    }

    /// The Sun/Paragon preset with the 2-HOPS path.
    pub fn sun_paragon_two_hops() -> Self {
        let mut c = PlatformConfig::default();
        c.paragon.path = CommPath::TwoHops;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_service_is_piecewise() {
        let p = ParagonParams::default();
        let at_limit = p.wire_service(p.eager_limit_words);
        let above = p.wire_service(p.eager_limit_words + 1);
        // The rendezvous handshake makes a discontinuous jump at the limit.
        assert!(above > at_limit);
        // But large messages stream faster per word.
        let per_word_small = (p.wire_service(1000) - p.wire_service(500)).as_secs_f64() / 500.0;
        let per_word_large =
            (p.wire_service(10_000) - p.wire_service(5_000)).as_secs_f64() / 5_000.0;
        assert!(per_word_large < per_word_small);
    }

    #[test]
    fn conv_demand_scales_with_words() {
        let p = ParagonParams::default();
        assert_eq!(p.conv_demand_out(0), p.conv_alpha);
        assert_eq!(p.conv_demand_out(1000), p.conv_alpha + p.conv_per_word_out * 1000);
        // Receive-side processing is the costlier direction at large
        // sizes, where the buffer-cluster overflow kicks in.
        assert!(p.conv_demand_in(1000) > p.conv_demand_out(1000));
        let marginal_small = (p.conv_demand_in(500) - p.conv_demand_in(400)).as_secs_f64();
        let marginal_large = (p.conv_demand_in(1100) - p.conv_demand_in(1000)).as_secs_f64();
        assert!(marginal_large > 2.0 * marginal_small);
    }

    #[test]
    fn presets_differ_only_in_path() {
        let one = PlatformConfig::sun_paragon();
        let two = PlatformConfig::sun_paragon_two_hops();
        assert_eq!(one.paragon.path, CommPath::OneHop);
        assert_eq!(two.paragon.path, CommPath::TwoHops);
        assert_eq!(one.paragon.wire_latency, two.paragon.wire_latency);
    }

    #[test]
    fn disk_service_has_seek_floor() {
        let d = DiskParams::default();
        assert_eq!(d.service(0), d.seek);
        assert!(d.service(1_000_000) > d.service(1_000));
    }

    #[test]
    fn nx_service_linear() {
        let p = ParagonParams::default();
        assert_eq!(p.nx_service(0), p.nx_per_message);
        assert!(p.nx_service(1000) > p.nx_service(10));
    }
}
