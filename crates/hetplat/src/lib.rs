//! # hetplat — simulated coupled heterogeneous platforms
//!
//! Discrete-event models of the paper's two platforms:
//!
//! * **Sun/CM2**: a time-shared front-end driving a SIMD back-end through a
//!   dedicated channel, with an exclusive sequencer and front-end-CPU-driven
//!   element-wise transfers;
//! * **Sun/Paragon**: the same front-end joined to a space-shared MPP by a
//!   shared Ethernet (directly per node, 1-HOP, or via a service-node NX
//!   bridge, 2-HOPS).
//!
//! These stand in for the 1996 hardware the paper measured; the analytical
//! contention model (`contention-model` crate) is calibrated against and
//! validated on these simulations exactly as the paper calibrated against
//! and validated on the real machines.
//!
//! Applications are phase machines (see [`phase`]); workload and benchmark
//! apps live in the `hetload` crate.
//!
//! modelcheck: no-todo-dbg, lossy-cast

#![warn(missing_docs)]

pub mod config;
pub mod phase;
pub mod platform;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::config::{
        Cm2Params, CommPath, FrontendParams, ParagonParams, PlatformConfig, SchedulerKind,
    };
    pub use crate::phase::{
        AppProcess, Cm2Instr, Cm2Program, Direction, Phase, PhaseKind, PhaseRecord, ScriptedApp,
    };
    pub use crate::platform::{Ev, Platform, PlatformModel};
}

pub use prelude::*;
