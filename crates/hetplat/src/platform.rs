//! The coupled-platform runtime.
//!
//! Glues the simcore resources into the two machines of the paper:
//!
//! * a **front-end** whose time-shared CPU runs every application's local
//!   computation, every data-format conversion, and the serial stream of
//!   CM2 programs;
//! * a **CM2** back-end behind a dedicated channel, driven element-by-
//!   element and instruction-by-instruction by the front-end (exclusive
//!   sequencer: one application at a time);
//! * a **Paragon** back-end behind a shared Ethernet (optionally via a
//!   service-node NX bridge), whose compute nodes are space-shared and
//!   therefore dedicated to their application.
//!
//! Applications are [`AppProcess`] phase machines; the runtime executes
//! phases against these resources and records per-phase timings.

use crate::config::{CommPath, PlatformConfig, SchedulerKind};
use crate::phase::Direction;
use crate::phase::{AppProcess, Cm2Instr, Phase, PhaseKind, PhaseRecord};
use simcore::cpu::{Cpu, Gen, PsCpu, RrCpu};
use simcore::engine::{Engine, Model};
use simcore::fifo::FifoServer;
use simcore::ids::{IdGen, JobId, ProcId, XferId};
use simcore::queue::EventQueue;
use simcore::rng::{derive_rng, SimRng};
use simcore::time::{SimDuration, SimTime};
use simcore::trace::Tracer;
use std::collections::{HashMap, VecDeque};

/// Events of the platform world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// Front-end CPU completion check.
    Cpu(Gen),
    /// Ethernet completion check.
    Wire(Gen),
    /// Service-node NX completion check.
    Nx(Gen),
    /// CM2 instruction completion check.
    Cm2(Gen),
    /// Local disk completion check.
    Disk(Gen),
    /// Process birth, sleep end, or back-end compute end.
    Wake(ProcId),
    /// A Paragon compute node emits the next message of a receive burst;
    /// the second field is the burst generation the emission belongs to.
    NodeEmit(ProcId, u64),
}

/// What a front-end CPU job completion means.
#[derive(Debug, Clone, Copy)]
enum CpuJobKind {
    /// A `Compute` phase finished.
    Compute(ProcId),
    /// Outbound Paragon conversion finished: put the message on the wire.
    ConvSend(ProcId),
    /// Inbound Paragon conversion finished: one more message landed.
    ConvRecv(ProcId),
    /// A whole element-wise CM2 transfer burst finished (the front-end
    /// runs the copy loop as one continuous CPU-bound stretch).
    Cm2Xfer(ProcId),
    /// A CM2 serial instruction finished.
    Serial(ProcId),
    /// A CM2 parallel-instruction dispatch finished; the payload is the
    /// CM2 execution demand to enqueue.
    Dispatch(ProcId, SimDuration),
}

/// What a wire (Ethernet) completion means.
#[derive(Debug, Clone, Copy)]
enum WireKind {
    /// Front-end → Paragon message left the wire.
    Outbound(ProcId),
    /// Paragon → front-end message arrived at the front-end.
    Inbound(ProcId),
}

/// Transfer burst progress (used for sends and receives alike).
#[derive(Debug, Clone, Copy)]
struct BurstState {
    dir: Direction,
    total: u64,
    words: u64,
    /// Conversions issued so far (outbound) / emissions so far (inbound).
    issued: u64,
    /// Conversions completed (the CPU side).
    conv_done: u64,
    /// Messages fully delivered to the far side (outbound only).
    delivered: u64,
    /// Inbound messages that arrived while a conversion was running.
    backlog: u64,
    /// An inbound conversion job is on the CPU.
    conv_busy: bool,
}

impl BurstState {
    fn new(dir: Direction, total: u64, words: u64) -> Self {
        BurstState {
            dir,
            total,
            words,
            issued: 0,
            conv_done: 0,
            delivered: 0,
            backlog: 0,
            conv_busy: false,
        }
    }
}

/// CM2 program execution progress.
#[derive(Debug, Clone)]
struct Cm2State {
    instrs: Vec<Cm2Instr>,
    pc: usize,
    /// Parallel instructions queued or executing on the CM2.
    in_flight: u64,
    /// Blocked on a `Sync` (or the implicit end-of-program drain).
    waiting_drain: bool,
    /// A serial/dispatch CPU job is outstanding.
    cpu_busy: bool,
}

/// What a process is doing right now.
#[derive(Debug)]
enum Activity {
    /// Spawned but not yet started.
    Unborn,
    /// Between phases (transient).
    Idle,
    /// A `Compute` phase is on the CPU.
    Computing,
    /// Sleeping until a `Wake`.
    Sleeping,
    /// Computing on the back-end partition until a `Wake`.
    BackendComputing,
    /// Executing a transfer burst.
    Bursting(BurstState),
    /// A disk operation is queued or in service.
    DoingIo,
    /// Running a CM2 program.
    RunningCm2(Cm2State),
    /// Queued for the CM2 sequencer; holds the phase to start once owned.
    WaitingCm2(Phase),
    /// Finished.
    Done,
}

/// Per-process runtime state.
struct ProcState {
    app: Box<dyn AppProcess>,
    name: String,
    current: Activity,
    phase_start: SimTime,
    started: SimTime,
    finished: Option<SimTime>,
    records: Vec<PhaseRecord>,
    rng: SimRng,
    /// Bumped at each burst start; stale NodeEmit events are dropped.
    burst_gen: u64,
    /// Accumulated CM2 execution time attributed to this process.
    cm2_busy: SimDuration,
}

/// The simulated world state (the [`Model`] of the engine).
pub struct PlatformModel {
    cfg: PlatformConfig,
    cpu: Box<dyn Cpu>,
    wire: FifoServer,
    nx: FifoServer,
    cm2_fifo: FifoServer,
    disk: FifoServer,
    procs: HashMap<ProcId, ProcState>,
    pending_cpu: HashMap<JobId, (CpuJobKind, SimTime)>,
    pending_wire: HashMap<XferId, WireKind>,
    pending_nx: HashMap<XferId, WireKind>,
    pending_cm2: HashMap<XferId, (ProcId, SimDuration)>,
    pending_disk: HashMap<XferId, ProcId>,
    cm2_owner: Option<ProcId>,
    cm2_waiters: VecDeque<ProcId>,
    ids: IdGen,
    seed: u64,
    /// Execution trace (enable before running for Figure-2 style output).
    pub tracer: Tracer,
}

impl PlatformModel {
    fn new(cfg: PlatformConfig, seed: u64) -> Self {
        let cpu: Box<dyn Cpu> = match cfg.frontend.scheduler {
            SchedulerKind::ProcessorSharing => Box::new(PsCpu::new()),
            SchedulerKind::RoundRobin => {
                Box::new(RrCpu::new(cfg.frontend.quantum, cfg.frontend.ctx_switch))
            }
        };
        PlatformModel {
            cfg,
            cpu,
            wire: FifoServer::new(),
            nx: FifoServer::new(),
            cm2_fifo: FifoServer::new(),
            disk: FifoServer::new(),
            procs: HashMap::new(),
            pending_cpu: HashMap::new(),
            pending_wire: HashMap::new(),
            pending_nx: HashMap::new(),
            pending_cm2: HashMap::new(),
            pending_disk: HashMap::new(),
            cm2_owner: None,
            cm2_waiters: VecDeque::new(),
            ids: IdGen::new(),
            seed,
            tracer: Tracer::disabled(),
        }
    }

    // -- resource event plumbing -------------------------------------------

    fn resched_cpu(&mut self, q: &mut EventQueue<Ev>) {
        if let Some((t, gen)) = self.cpu.next_event() {
            q.schedule(t, Ev::Cpu(gen));
        }
    }

    fn resched_wire(&mut self, q: &mut EventQueue<Ev>) {
        if let Some((t, gen)) = self.wire.next_event() {
            q.schedule(t, Ev::Wire(gen));
        }
    }

    fn resched_nx(&mut self, q: &mut EventQueue<Ev>) {
        if let Some((t, gen)) = self.nx.next_event() {
            q.schedule(t, Ev::Nx(gen));
        }
    }

    fn resched_cm2(&mut self, q: &mut EventQueue<Ev>) {
        if let Some((t, gen)) = self.cm2_fifo.next_event() {
            q.schedule(t, Ev::Cm2(gen));
        }
    }

    fn resched_disk(&mut self, q: &mut EventQueue<Ev>) {
        if let Some((t, gen)) = self.disk.next_event() {
            q.schedule(t, Ev::Disk(gen));
        }
    }

    fn submit_cpu(
        &mut self,
        now: SimTime,
        kind: CpuJobKind,
        demand: SimDuration,
        q: &mut EventQueue<Ev>,
    ) {
        self.submit_cpu_weighted(now, kind, demand, 1.0, q);
    }

    fn submit_cpu_weighted(
        &mut self,
        now: SimTime,
        kind: CpuJobKind,
        demand: SimDuration,
        weight: f64,
        q: &mut EventQueue<Ev>,
    ) {
        let id = self.ids.next_job();
        self.pending_cpu.insert(id, (kind, now));
        self.cpu.arrive_weighted(now, id, demand, weight);
        self.resched_cpu(q);
    }

    // -- process lifecycle ---------------------------------------------------

    fn spawn(&mut self, app: Box<dyn AppProcess>, at: SimTime) -> ProcId {
        let id = self.ids.next_proc();
        let name = app.name().to_string();
        let rng = derive_rng(self.seed, &name, id.0);
        self.procs.insert(
            id,
            ProcState {
                app,
                name,
                current: Activity::Unborn,
                phase_start: at,
                started: at,
                finished: None,
                records: Vec::new(),
                rng,
                burst_gen: 0,
                cm2_busy: SimDuration::ZERO,
            },
        );
        id
    }

    /// Finishes the running phase: records it and starts the next one.
    fn complete_phase(&mut self, id: ProcId, now: SimTime, q: &mut EventQueue<Ev>) {
        let (kind, start) = {
            let st = self.procs.get_mut(&id).expect("unknown process");
            let kind = match &st.current {
                Activity::Computing => PhaseKind::Compute,
                Activity::Sleeping => PhaseKind::Sleep,
                Activity::BackendComputing => PhaseKind::BackendCompute,
                Activity::Bursting(b) => {
                    if b.dir.is_outbound() {
                        PhaseKind::Send
                    } else {
                        PhaseKind::Recv
                    }
                }
                Activity::DoingIo => PhaseKind::DiskIo,
                Activity::RunningCm2(_) => PhaseKind::Cm2Program,
                other => panic!("phase completion in state {other:?}"),
            };
            st.current = Activity::Idle;
            (kind, st.phase_start)
        };
        // Release the sequencer if this was a CM2 phase.
        if matches!(kind, PhaseKind::Cm2Program)
            || (matches!(kind, PhaseKind::Send | PhaseKind::Recv) && self.cm2_owner == Some(id))
        {
            self.release_cm2(id, now, q);
        }
        let st = self.procs.get_mut(&id).expect("unknown process");
        st.records.push(PhaseRecord { kind, start, end: now });
        self.advance(id, now, q);
    }

    /// Asks the app for its next phase and starts it.
    fn advance(&mut self, id: ProcId, now: SimTime, q: &mut EventQueue<Ev>) {
        let phase = {
            let st = self.procs.get_mut(&id).expect("unknown process");
            let mut rng = st.rng.clone();
            let phase = st.app.next_phase(now, &mut rng);
            st.rng = rng;
            phase
        };
        self.begin_phase(id, phase, now, q);
    }

    /// Starts executing `phase` for process `id`.
    fn begin_phase(&mut self, id: ProcId, phase: Phase, now: SimTime, q: &mut EventQueue<Ev>) {
        {
            let st = self.procs.get_mut(&id).expect("unknown process");
            st.phase_start = now;
        }
        match phase {
            Phase::Done => {
                let st = self.procs.get_mut(&id).expect("unknown process");
                st.current = Activity::Done;
                st.finished = Some(now);
            }
            Phase::Sleep(d) => {
                let st = self.procs.get_mut(&id).expect("unknown process");
                st.current = Activity::Sleeping;
                q.schedule(now + d, Ev::Wake(id));
            }
            Phase::BackendCompute(d) => {
                let st = self.procs.get_mut(&id).expect("unknown process");
                st.current = Activity::BackendComputing;
                q.schedule(now + d, Ev::Wake(id));
            }
            Phase::Compute(d) => {
                let st = self.procs.get_mut(&id).expect("unknown process");
                st.current = Activity::Computing;
                self.submit_cpu(now, CpuJobKind::Compute(id), d, q);
            }
            Phase::DiskIo { words } => {
                let st = self.procs.get_mut(&id).expect("unknown process");
                st.current = Activity::DoingIo;
                let xid = self.ids.next_xfer();
                self.pending_disk.insert(xid, id);
                let service = self.cfg.disk.service(words);
                self.disk.enqueue(now, xid, service);
                self.resched_disk(q);
            }
            Phase::Send { count, words, dir } => {
                assert!(dir.is_outbound(), "Send phase with inbound direction {dir:?}");
                self.begin_burst(id, BurstState::new(dir, count, words), now, q);
            }
            Phase::Recv { count, words, dir } => {
                assert!(!dir.is_outbound(), "Recv phase with outbound direction {dir:?}");
                self.begin_burst(id, BurstState::new(dir, count, words), now, q);
            }
            Phase::Cm2Program(prog) => {
                if !self.acquire_cm2(id, Phase::Cm2Program(prog.clone())) {
                    return; // queued for the sequencer
                }
                let st = self.procs.get_mut(&id).expect("unknown process");
                st.current = Activity::RunningCm2(Cm2State {
                    instrs: prog.instrs,
                    pc: 0,
                    in_flight: 0,
                    waiting_drain: false,
                    cpu_busy: false,
                });
                self.step_cm2(id, now, q);
            }
        }
    }

    // -- CM2 sequencer ---------------------------------------------------------

    /// Tries to take the sequencer; on failure parks the phase.
    fn acquire_cm2(&mut self, id: ProcId, phase: Phase) -> bool {
        match self.cm2_owner {
            None => {
                self.cm2_owner = Some(id);
                true
            }
            Some(owner) if owner == id => true,
            Some(_) => {
                let st = self.procs.get_mut(&id).expect("unknown process");
                st.current = Activity::WaitingCm2(phase);
                self.cm2_waiters.push_back(id);
                false
            }
        }
    }

    fn release_cm2(&mut self, id: ProcId, now: SimTime, q: &mut EventQueue<Ev>) {
        assert_eq!(self.cm2_owner, Some(id), "release by non-owner");
        self.cm2_owner = None;
        if let Some(next) = self.cm2_waiters.pop_front() {
            let st = self.procs.get_mut(&next).expect("unknown waiter");
            let parked = std::mem::replace(&mut st.current, Activity::Idle);
            let Activity::WaitingCm2(phase) = parked else {
                panic!("waiter {next} not in WaitingCm2 state");
            };
            // The parked phase's record measures from acquisition; queueing
            // delay shows up as a gap between consecutive records.
            self.begin_phase(next, phase, now, q);
        }
    }

    /// Drives the CM2 program interpreter as far as it can go without
    /// waiting on a resource.
    fn step_cm2(&mut self, id: ProcId, now: SimTime, q: &mut EventQueue<Ev>) {
        let mut issue: Option<(CpuJobKind, SimDuration)> = None;
        let mut done = false;
        {
            let st = self.procs.get_mut(&id).expect("unknown process");
            let Activity::RunningCm2(cm2) = &mut st.current else {
                panic!("step_cm2 outside RunningCm2");
            };
            debug_assert!(!cm2.cpu_busy, "step_cm2 with CPU job outstanding");
            loop {
                if cm2.pc >= cm2.instrs.len() {
                    if cm2.in_flight == 0 {
                        done = true;
                    } else {
                        cm2.waiting_drain = true;
                    }
                    break;
                }
                match cm2.instrs[cm2.pc] {
                    Cm2Instr::Serial(d) => {
                        cm2.pc += 1;
                        cm2.cpu_busy = true;
                        issue = Some((CpuJobKind::Serial(id), d));
                        break;
                    }
                    Cm2Instr::Parallel(d) => {
                        cm2.pc += 1;
                        cm2.cpu_busy = true;
                        issue = Some((CpuJobKind::Dispatch(id, d), self.cfg.cm2.instr_dispatch));
                        break;
                    }
                    Cm2Instr::Sync => {
                        if cm2.in_flight > 0 {
                            cm2.waiting_drain = true;
                            break;
                        }
                        cm2.pc += 1;
                    }
                }
            }
        }
        if let Some((kind, demand)) = issue {
            self.submit_cpu(now, kind, demand, q);
        }
        if done {
            self.complete_phase(id, now, q);
        }
    }

    // -- transfer bursts ---------------------------------------------------------

    fn begin_burst(&mut self, id: ProcId, burst: BurstState, now: SimTime, q: &mut EventQueue<Ev>) {
        if burst.dir.is_cm2() && !self.acquire_cm2(id, burst_phase(&burst)) {
            return; // queued for the sequencer
        }
        let gen = {
            let st = self.procs.get_mut(&id).expect("unknown process");
            st.current = Activity::Bursting(burst);
            st.burst_gen += 1;
            st.burst_gen
        };
        if burst.total == 0 {
            self.complete_phase(id, now, q);
            return;
        }
        match burst.dir {
            Direction::ToCm2 | Direction::FromCm2 => {
                // The transfer is an element-by-element copy loop on the
                // front-end: one continuous CPU demand covering the whole
                // burst (the process never sleeps between messages).
                let demand = self.cm2_msg_demand(burst.dir, burst.words) * burst.total;
                self.submit_cpu(now, CpuJobKind::Cm2Xfer(id), demand, q);
            }
            Direction::ToParagon => self.issue_paragon_conv_send(id, now, q),
            Direction::FromParagon => {
                // The remote node starts streaming when the phase begins.
                q.schedule(now + self.cfg.paragon.node_overhead, Ev::NodeEmit(id, gen));
            }
        }
    }

    /// Front-end CPU demand for one CM2 channel message in `dir`.
    fn cm2_msg_demand(&self, dir: Direction, words: u64) -> SimDuration {
        let c = &self.cfg.cm2;
        match dir {
            Direction::ToCm2 => c.xfer_alpha_to + c.xfer_per_word_to * words,
            Direction::FromCm2 => c.xfer_alpha_from + c.xfer_per_word_from * words,
            _ => unreachable!("not a CM2 direction"),
        }
    }

    fn issue_paragon_conv_send(&mut self, id: ProcId, now: SimTime, q: &mut EventQueue<Ev>) {
        let words = {
            let st = self.procs.get_mut(&id).expect("unknown process");
            let Activity::Bursting(b) = &mut st.current else {
                panic!("conv send outside burst");
            };
            debug_assert!(b.issued < b.total);
            debug_assert!(!b.conv_busy);
            b.issued += 1;
            b.conv_busy = true;
            b.words
        };
        let demand = self.cfg.paragon.conv_demand_out(words);
        self.submit_cpu(now, CpuJobKind::ConvSend(id), demand, q);
    }

    /// Starts an inbound conversion if the CPU slot for this process is
    /// free, otherwise grows the backlog.
    fn inbound_arrival(&mut self, id: ProcId, now: SimTime, q: &mut EventQueue<Ev>) {
        let start_conv = {
            let st = self.procs.get_mut(&id).expect("unknown process");
            let Activity::Bursting(b) = &mut st.current else {
                // Arrival for a process no longer bursting (cannot happen:
                // bursts only finish after all arrivals convert).
                panic!("inbound arrival outside burst");
            };
            if b.conv_busy {
                b.backlog += 1;
                None
            } else {
                b.conv_busy = true;
                Some(b.words)
            }
        };
        if let Some(words) = start_conv {
            let demand = self.cfg.paragon.conv_demand_in(words);
            let w = self.cfg.paragon.recv_kernel_weight;
            self.submit_cpu_weighted(now, CpuJobKind::ConvRecv(id), demand, w, q);
        }
    }

    // -- event handlers ---------------------------------------------------------

    fn on_cpu_done(&mut self, job: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        let Some((kind, issued_at)) = self.pending_cpu.remove(&job) else {
            return;
        };
        match kind {
            CpuJobKind::Compute(id) => {
                self.trace_proc(id, "sun", "compute", issued_at, now);
                self.complete_phase(id, now, q);
            }
            CpuJobKind::Serial(id) => {
                self.trace_proc(id, "sun", "serial", issued_at, now);
                let st = self.procs.get_mut(&id).expect("unknown process");
                let Activity::RunningCm2(cm2) = &mut st.current else {
                    panic!("serial completion outside CM2 program");
                };
                cm2.cpu_busy = false;
                self.step_cm2(id, now, q);
            }
            CpuJobKind::Dispatch(id, exec) => {
                self.trace_proc(id, "sun", "serial", issued_at, now);
                {
                    let st = self.procs.get_mut(&id).expect("unknown process");
                    let Activity::RunningCm2(cm2) = &mut st.current else {
                        panic!("dispatch completion outside CM2 program");
                    };
                    cm2.cpu_busy = false;
                    cm2.in_flight += 1;
                }
                let xid = self.ids.next_xfer();
                self.pending_cm2.insert(xid, (id, exec));
                self.cm2_fifo.enqueue(now, xid, exec);
                self.resched_cm2(q);
                self.step_cm2(id, now, q);
            }
            CpuJobKind::Cm2Xfer(id) => {
                self.trace_proc(id, "sun", "xfer", issued_at, now);
                {
                    let st = self.procs.get_mut(&id).expect("unknown process");
                    let Activity::Bursting(b) = &mut st.current else {
                        panic!("CM2 xfer completion outside burst");
                    };
                    b.conv_done = b.total;
                    b.delivered = b.total;
                }
                self.complete_phase(id, now, q);
            }
            CpuJobKind::ConvSend(id) => {
                self.trace_proc(id, "sun", "conv", issued_at, now);
                let window = self.cfg.paragon.send_window.max(1);
                let (words, more) = {
                    let st = self.procs.get_mut(&id).expect("unknown process");
                    let Activity::Bursting(b) = &mut st.current else {
                        panic!("conv completion outside burst");
                    };
                    b.conv_done += 1;
                    b.conv_busy = false;
                    (b.words, b.issued < b.total && b.issued - b.delivered < window)
                };
                // The converted message goes on the wire…
                let xid = self.ids.next_xfer();
                self.pending_wire.insert(xid, WireKind::Outbound(id));
                let service = self.cfg.paragon.wire_service(words) + self.cfg.paragon.node_overhead;
                self.wire.enqueue(now, xid, service);
                self.resched_wire(q);
                // …and, window permitting, the CPU converts the next one.
                if more {
                    self.issue_paragon_conv_send(id, now, q);
                }
            }
            CpuJobKind::ConvRecv(id) => {
                self.trace_proc(id, "sun", "conv", issued_at, now);
                let next = {
                    let st = self.procs.get_mut(&id).expect("unknown process");
                    let Activity::Bursting(b) = &mut st.current else {
                        panic!("recv conv completion outside burst");
                    };
                    b.conv_done += 1;
                    b.conv_busy = false;
                    if b.conv_done == b.total {
                        Some(None) // burst complete
                    } else if b.backlog > 0 {
                        b.backlog -= 1;
                        b.conv_busy = true;
                        Some(Some(b.words))
                    } else {
                        None
                    }
                };
                match next {
                    Some(None) => self.complete_phase(id, now, q),
                    Some(Some(words)) => {
                        let demand = self.cfg.paragon.conv_demand_in(words);
                        let w = self.cfg.paragon.recv_kernel_weight;
                        self.submit_cpu_weighted(now, CpuJobKind::ConvRecv(id), demand, w, q);
                    }
                    None => {}
                }
            }
        }
    }

    fn on_wire_done(&mut self, xid: XferId, now: SimTime, q: &mut EventQueue<Ev>) {
        let Some(kind) = self.pending_wire.remove(&xid) else { return };
        match kind {
            WireKind::Outbound(id) => {
                if self.cfg.paragon.path == CommPath::TwoHops {
                    // Forward over NX to the compute node.
                    let words = self.burst_words(id);
                    let nid = self.ids.next_xfer();
                    self.pending_nx.insert(nid, WireKind::Outbound(id));
                    self.nx.enqueue(now, nid, self.cfg.paragon.nx_service(words));
                    self.resched_nx(q);
                } else {
                    self.outbound_delivered(id, now, q);
                }
            }
            WireKind::Inbound(id) => {
                // Flow control: the node emits the next message only after
                // the previous one has cleared the wire (protocol ack).
                let gen = self.procs.get(&id).map(|s| s.burst_gen).unwrap_or(0);
                q.schedule(now + self.cfg.paragon.node_emit_gap, Ev::NodeEmit(id, gen));
                self.inbound_arrival(id, now, q);
            }
        }
    }

    fn on_nx_done(&mut self, xid: XferId, now: SimTime, q: &mut EventQueue<Ev>) {
        let Some(kind) = self.pending_nx.remove(&xid) else { return };
        match kind {
            WireKind::Outbound(id) => self.outbound_delivered(id, now, q),
            WireKind::Inbound(id) => {
                // NX delivered to the service node; now cross the Ethernet.
                let words = self.burst_words(id);
                let wid = self.ids.next_xfer();
                self.pending_wire.insert(wid, WireKind::Inbound(id));
                self.wire.enqueue(now, wid, self.cfg.paragon.wire_service(words));
                self.resched_wire(q);
            }
        }
    }

    fn outbound_delivered(&mut self, id: ProcId, now: SimTime, q: &mut EventQueue<Ev>) {
        let window = self.cfg.paragon.send_window.max(1);
        let (complete, issue_next) = {
            let st = self.procs.get_mut(&id).expect("unknown process");
            let Activity::Bursting(b) = &mut st.current else {
                panic!("delivery outside burst");
            };
            b.delivered += 1;
            let complete = b.delivered == b.total && b.conv_done == b.total;
            let issue_next =
                !complete && b.issued < b.total && !b.conv_busy && b.issued - b.delivered < window;
            (complete, issue_next)
        };
        if complete {
            self.complete_phase(id, now, q);
        } else if issue_next {
            self.issue_paragon_conv_send(id, now, q);
        }
    }

    fn on_cm2_done(&mut self, xid: XferId, now: SimTime, q: &mut EventQueue<Ev>) {
        let Some((id, exec)) = self.pending_cm2.remove(&xid) else { return };
        let exec_start = SimTime(now.0.saturating_sub(exec.as_nanos()));
        self.trace_proc(id, "cm2", "execute", exec_start, now);
        let resume = {
            let st = self.procs.get_mut(&id).expect("unknown process");
            st.cm2_busy += exec;
            let Activity::RunningCm2(cm2) = &mut st.current else {
                panic!("CM2 completion outside program");
            };
            cm2.in_flight -= 1;
            if cm2.in_flight == 0 && cm2.waiting_drain {
                cm2.waiting_drain = false;
                // If a CPU job is still outstanding (it cannot be: drain
                // waits only start with no CPU job), resume the interpreter.
                !cm2.cpu_busy
            } else {
                false
            }
        };
        if resume {
            self.step_cm2(id, now, q);
        }
    }

    fn on_node_emit(&mut self, id: ProcId, gen: u64, now: SimTime, q: &mut EventQueue<Ev>) {
        let emit = {
            let st = self.procs.get_mut(&id).expect("unknown process");
            if st.burst_gen != gen {
                return; // emission for a burst that already ended
            }
            let Activity::Bursting(b) = &mut st.current else {
                return; // phase already over
            };
            if b.issued >= b.total {
                return;
            }
            b.issued += 1;
            (b.words, b.issued < b.total)
        };
        let (words, more) = emit;
        match self.cfg.paragon.path {
            CommPath::OneHop => {
                let wid = self.ids.next_xfer();
                self.pending_wire.insert(wid, WireKind::Inbound(id));
                self.wire.enqueue(now, wid, self.cfg.paragon.wire_service(words));
                self.resched_wire(q);
            }
            CommPath::TwoHops => {
                let nid = self.ids.next_xfer();
                self.pending_nx.insert(nid, WireKind::Inbound(id));
                self.nx.enqueue(now, nid, self.cfg.paragon.nx_service(words));
                self.resched_nx(q);
            }
        }
        // The next emission is triggered by this message clearing the wire
        // (see the Inbound arm of on_wire_done), not by a timer: the node
        // is flow-controlled, so the wire backlog stays bounded.
        let _ = more;
    }

    // -- helpers ---------------------------------------------------------

    fn burst_words(&self, id: ProcId) -> u64 {
        let st = self.procs.get(&id).expect("unknown process");
        let Activity::Bursting(b) = &st.current else {
            panic!("burst_words outside burst");
        };
        b.words
    }

    fn trace_proc(&mut self, id: ProcId, lane: &str, label: &str, start: SimTime, end: SimTime) {
        if self.tracer.is_enabled() {
            let name = self.procs.get(&id).map(|s| s.name.clone()).unwrap_or_default();
            let lane = format!("{lane}:{name}");
            self.tracer.record(&lane, label, start, end);
        }
    }
}

/// Helper: rebuild the Phase that a parked burst represents.
fn burst_phase(b: &BurstState) -> Phase {
    if b.dir.is_outbound() {
        Phase::Send { count: b.total, words: b.words, dir: b.dir }
    } else {
        Phase::Recv { count: b.total, words: b.words, dir: b.dir }
    }
}

impl Model for PlatformModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, q: &mut EventQueue<Ev>) {
        match event {
            Ev::Cpu(gen) => {
                let done = self.cpu.on_event(now, gen);
                for job in done {
                    self.on_cpu_done(job, now, q);
                }
                self.resched_cpu(q);
            }
            Ev::Wire(gen) => {
                if let Some(xid) = self.wire.on_event(now, gen) {
                    self.on_wire_done(xid, now, q);
                }
                self.resched_wire(q);
            }
            Ev::Nx(gen) => {
                if let Some(xid) = self.nx.on_event(now, gen) {
                    self.on_nx_done(xid, now, q);
                }
                self.resched_nx(q);
            }
            Ev::Cm2(gen) => {
                if let Some(xid) = self.cm2_fifo.on_event(now, gen) {
                    self.on_cm2_done(xid, now, q);
                }
                self.resched_cm2(q);
            }
            Ev::Disk(gen) => {
                if let Some(xid) = self.disk.on_event(now, gen) {
                    if let Some(id) = self.pending_disk.remove(&xid) {
                        self.complete_phase(id, now, q);
                    }
                }
                self.resched_disk(q);
            }
            Ev::Wake(id) => {
                let action = {
                    let st = self.procs.get_mut(&id).expect("unknown process");
                    match st.current {
                        Activity::Unborn => {
                            st.started = now;
                            0
                        }
                        Activity::Sleeping | Activity::BackendComputing => 1,
                        _ => 2, // stale wake
                    }
                };
                match action {
                    0 => self.advance(id, now, q),
                    1 => self.complete_phase(id, now, q),
                    _ => {}
                }
            }
            Ev::NodeEmit(id, gen) => self.on_node_emit(id, gen, now, q),
        }
    }
}

// ---------------------------------------------------------------------------
// Public wrapper
// ---------------------------------------------------------------------------

/// A runnable coupled-platform simulation.
pub struct Platform {
    eng: Engine<PlatformModel>,
}

impl Platform {
    /// Builds a platform from a configuration and a root seed.
    pub fn new(cfg: PlatformConfig, seed: u64) -> Self {
        Platform { eng: Engine::new(PlatformModel::new(cfg, seed)) }
    }

    /// Enables span tracing (do this before running).
    pub fn enable_trace(&mut self) {
        self.eng.model.tracer = Tracer::enabled();
    }

    /// The recorded trace.
    pub fn tracer(&self) -> &Tracer {
        &self.eng.model.tracer
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.eng.now()
    }

    /// Spawns an application starting immediately.
    pub fn spawn(&mut self, app: Box<dyn AppProcess>) -> ProcId {
        self.spawn_at(app, self.eng.now())
    }

    /// Spawns an application starting at `at`.
    pub fn spawn_at(&mut self, app: Box<dyn AppProcess>, at: SimTime) -> ProcId {
        let id = self.eng.model.spawn(app, at);
        self.eng.schedule(at, Ev::Wake(id));
        id
    }

    /// Runs until `probe` finishes; returns its completion time, or `None`
    /// if the event queue drained first (a stall — usually a scenario bug).
    pub fn run_until_done(&mut self, probe: ProcId) -> Option<SimTime> {
        loop {
            if let Some(t) = self.completion(probe) {
                return Some(t);
            }
            if !self.eng.step() {
                return self.completion(probe);
            }
        }
    }

    /// Runs until the given deadline (events after it stay pending).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.eng.run_until(deadline)
    }

    /// Completion time of a process, if it has finished.
    pub fn completion(&self, id: ProcId) -> Option<SimTime> {
        self.eng.model.procs.get(&id).and_then(|s| s.finished)
    }

    /// Start-to-finish elapsed time of a finished process.
    pub fn elapsed(&self, id: ProcId) -> Option<SimDuration> {
        let st = self.eng.model.procs.get(&id)?;
        st.finished.map(|end| end - st.started)
    }

    /// The per-phase records of a process, in execution order.
    pub fn records(&self, id: ProcId) -> &[PhaseRecord] {
        self.eng.model.procs.get(&id).map(|s| s.records.as_slice()).unwrap_or(&[])
    }

    /// Sum of elapsed time over this process's phases of `kind`.
    pub fn phase_time(&self, id: ProcId, kind: PhaseKind) -> SimDuration {
        self.records(id)
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.elapsed())
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Total CM2 execution time attributed to a process.
    pub fn cm2_busy(&self, id: ProcId) -> SimDuration {
        self.eng.model.procs.get(&id).map(|s| s.cm2_busy).unwrap_or(SimDuration::ZERO)
    }

    /// Number of events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.eng.events_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use crate::phase::ScriptedApp;

    fn cfg_ps() -> PlatformConfig {
        PlatformConfig {
            frontend: crate::config::FrontendParams::processor_sharing(),
            ..Default::default()
        }
    }

    fn secs(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }

    #[test]
    fn single_compute_phase_runs_dedicated() {
        let mut p = Platform::new(cfg_ps(), 1);
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![Phase::Compute(SimDuration::from_secs(2))],
        )));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        assert!((end.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(p.records(probe).len(), 1);
    }

    #[test]
    fn p_hogs_slow_compute_by_p_plus_one() {
        for p_extra in 0..4u64 {
            let mut p = Platform::new(cfg_ps(), 1);
            for i in 0..p_extra {
                p.spawn(Box::new(ScriptedApp::new(
                    format!("hog{i}"),
                    vec![Phase::Compute(SimDuration::from_secs(1000))],
                )));
            }
            let probe = p.spawn(Box::new(ScriptedApp::new(
                "probe",
                vec![Phase::Compute(SimDuration::from_secs(1))],
            )));
            let end = p.run_until_done(probe).expect("probe ran to completion");
            let expect = (p_extra + 1) as f64;
            assert!((end.as_secs_f64() - expect).abs() < 1e-6, "p={p_extra}: {end} vs {expect}");
        }
    }

    #[test]
    fn cm2_transfer_time_matches_alpha_beta_law() {
        let cfg = cfg_ps();
        let mut p = Platform::new(cfg, 1);
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![Phase::Send { count: 100, words: 500, dir: Direction::ToCm2 }],
        )));
        p.run_until_done(probe).expect("probe ran to completion");
        let t = secs(p.phase_time(probe, PhaseKind::Send));
        let per_msg =
            cfg.cm2.xfer_alpha_to.as_secs_f64() + 500.0 * cfg.cm2.xfer_per_word_to.as_secs_f64();
        assert!((t - 100.0 * per_msg).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn cm2_transfer_slows_by_p_plus_one_under_hogs() {
        let run = |hogs: usize| -> f64 {
            let mut p = Platform::new(cfg_ps(), 1);
            for i in 0..hogs {
                p.spawn(Box::new(ScriptedApp::new(
                    format!("hog{i}"),
                    vec![Phase::Compute(SimDuration::from_secs(10_000))],
                )));
            }
            let probe = p.spawn(Box::new(ScriptedApp::new(
                "probe",
                vec![Phase::Send { count: 200, words: 1000, dir: Direction::ToCm2 }],
            )));
            p.run_until_done(probe).expect("probe ran to completion");
            secs(p.phase_time(probe, PhaseKind::Send))
        };
        let t0 = run(0);
        let t3 = run(3);
        assert!((t3 / t0 - 4.0).abs() < 0.01, "ratio {}", t3 / t0);
    }

    #[test]
    fn cm2_program_pipeline_and_idle_accounting() {
        let ms = SimDuration::from_millis;
        // serial 10ms, parallel 30ms, sync, serial 10ms: the second serial
        // waits for the parallel to finish.
        let prog = crate::phase::Cm2Program::new(vec![
            Cm2Instr::Serial(ms(10)),
            Cm2Instr::Parallel(ms(30)),
            Cm2Instr::Sync,
            Cm2Instr::Serial(ms(10)),
        ]);
        let mut cfg = cfg_ps();
        cfg.cm2.instr_dispatch = SimDuration::ZERO;
        let mut p = Platform::new(cfg, 1);
        let probe = p.spawn(Box::new(ScriptedApp::new("probe", vec![Phase::Cm2Program(prog)])));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        // 10 (serial) + 30 (parallel) + 10 (serial) = 50ms.
        assert!((end.as_secs_f64() - 0.050).abs() < 1e-9, "end {end}");
        assert!((secs(p.cm2_busy(probe)) - 0.030).abs() < 1e-9);
    }

    #[test]
    fn cm2_overlap_hides_serial_behind_parallel() {
        let ms = SimDuration::from_millis;
        // parallel 50ms then serial 20ms with no sync: they overlap.
        let prog = crate::phase::Cm2Program::new(vec![
            Cm2Instr::Parallel(ms(50)),
            Cm2Instr::Serial(ms(20)),
        ]);
        let mut cfg = cfg_ps();
        cfg.cm2.instr_dispatch = SimDuration::ZERO;
        let mut p = Platform::new(cfg, 1);
        let probe = p.spawn(Box::new(ScriptedApp::new("probe", vec![Phase::Cm2Program(prog)])));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        assert!((end.as_secs_f64() - 0.050).abs() < 1e-9, "end {end}");
    }

    #[test]
    fn cm2_serial_stream_slowed_by_hogs_when_serial_bound() {
        let ms = SimDuration::from_millis;
        let mk = |n: usize| {
            let mut instrs = Vec::new();
            for _ in 0..n {
                instrs.push(Cm2Instr::Serial(ms(10)));
                instrs.push(Cm2Instr::Parallel(ms(1)));
                instrs.push(Cm2Instr::Sync);
            }
            crate::phase::Cm2Program::new(instrs)
        };
        let run = |hogs: usize| -> f64 {
            let mut cfg = cfg_ps();
            cfg.cm2.instr_dispatch = SimDuration::ZERO;
            let mut p = Platform::new(cfg, 1);
            for i in 0..hogs {
                p.spawn(Box::new(ScriptedApp::new(
                    format!("hog{i}"),
                    vec![Phase::Compute(SimDuration::from_secs(10_000))],
                )));
            }
            let probe =
                p.spawn(Box::new(ScriptedApp::new("probe", vec![Phase::Cm2Program(mk(50))])));
            p.run_until_done(probe).expect("probe ran to completion").as_secs_f64()
        };
        let t0 = run(0);
        let t3 = run(3);
        // Serial-bound: the model predicts max(parallel-path, serial×4).
        // serial = 0.5s, parallel = 0.05s; dedicated ≈ 0.55, loaded ≈ 2.0+.
        assert!((t3 / t0 - 2.0 / 0.55).abs() < 0.15, "t0={t0} t3={t3}");
    }

    #[test]
    fn paragon_send_burst_stop_and_wait_with_unit_window() {
        let cfg = cfg_ps(); // send_window = 1 by default
        let mut p = Platform::new(cfg, 1);
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![Phase::Send { count: 100, words: 200, dir: Direction::ToParagon }],
        )));
        p.run_until_done(probe).expect("probe ran to completion");
        let t = secs(p.phase_time(probe, PhaseKind::Send));
        let conv = cfg.paragon.conv_demand_out(200).as_secs_f64();
        let wire = (cfg.paragon.wire_service(200) + cfg.paragon.node_overhead).as_secs_f64();
        // Blocking send: every message pays conversion *then* wire.
        let expect = 100.0 * (conv + wire);
        assert!((t - expect).abs() / expect < 0.02, "t={t} expect={expect}");
    }

    #[test]
    fn paragon_send_burst_pipelines_with_large_window() {
        let mut cfg = cfg_ps();
        cfg.paragon.send_window = 1000;
        let mut p = Platform::new(cfg, 1);
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![Phase::Send { count: 100, words: 200, dir: Direction::ToParagon }],
        )));
        p.run_until_done(probe).expect("probe ran to completion");
        let t = secs(p.phase_time(probe, PhaseKind::Send));
        let conv = cfg.paragon.conv_demand_out(200).as_secs_f64();
        let wire = (cfg.paragon.wire_service(200) + cfg.paragon.node_overhead).as_secs_f64();
        // Pipelined: ≈ serialized bottleneck stage + one fill of the other.
        let bottleneck = conv.max(wire);
        let expect = 100.0 * bottleneck + conv.min(wire);
        assert!((t - expect).abs() / expect < 0.05, "t={t} expect={expect}");
    }

    #[test]
    fn paragon_recv_burst_completes_all_conversions() {
        let cfg = cfg_ps();
        let mut p = Platform::new(cfg, 1);
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![Phase::Recv { count: 50, words: 200, dir: Direction::FromParagon }],
        )));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        assert!(end.as_secs_f64() > 0.0);
        let t = secs(p.phase_time(probe, PhaseKind::Recv));
        // Lower bound: 50 messages over the wire serialized.
        let wire = cfg.paragon.wire_service(200).as_secs_f64();
        assert!(t >= 50.0 * wire, "t={t}");
    }

    #[test]
    fn two_hops_is_slower_than_one_hop() {
        let run = |cfg: PlatformConfig| -> f64 {
            let mut p = Platform::new(cfg, 1);
            let probe = p.spawn(Box::new(ScriptedApp::new(
                "probe",
                vec![Phase::Send { count: 100, words: 500, dir: Direction::ToParagon }],
            )));
            p.run_until_done(probe).expect("probe ran to completion");
            secs(p.phase_time(probe, PhaseKind::Send))
        };
        let mut one = cfg_ps();
        one.paragon.path = CommPath::OneHop;
        let mut two = cfg_ps();
        two.paragon.path = CommPath::TwoHops;
        assert!(run(two) > run(one));
    }

    #[test]
    fn wire_is_shared_between_processes() {
        // Two processes sending concurrently contend for the wire. Zero
        // conversion cost isolates the wire: with negligible CPU stages the
        // two senders alternate messages and the probe takes ~2× as long.
        let mut cfg = cfg_ps();
        cfg.paragon.conv_alpha = SimDuration::ZERO;
        cfg.paragon.conv_per_word_out = SimDuration::ZERO;
        cfg.paragon.conv_per_word_in = SimDuration::ZERO;
        cfg.paragon.conv_per_word_in_overflow = SimDuration::ZERO;
        let solo = {
            let mut p = Platform::new(cfg, 1);
            let probe = p.spawn(Box::new(ScriptedApp::new(
                "probe",
                vec![Phase::Send { count: 200, words: 1000, dir: Direction::ToParagon }],
            )));
            p.run_until_done(probe).expect("probe ran to completion");
            secs(p.phase_time(probe, PhaseKind::Send))
        };
        let contended = {
            let mut p = Platform::new(cfg, 1);
            p.spawn(Box::new(ScriptedApp::new(
                "rival",
                vec![Phase::Send { count: 10_000, words: 1000, dir: Direction::ToParagon }],
            )));
            let probe = p.spawn(Box::new(ScriptedApp::new(
                "probe",
                vec![Phase::Send { count: 200, words: 1000, dir: Direction::ToParagon }],
            )));
            p.run_until_done(probe).expect("probe ran to completion");
            secs(p.phase_time(probe, PhaseKind::Send))
        };
        assert!(contended > 1.8 * solo, "contended {contended} vs solo {solo}");
    }

    #[test]
    fn cm2_sequencer_is_exclusive() {
        let ms = SimDuration::from_millis;
        let prog = crate::phase::Cm2Program::new(vec![Cm2Instr::Parallel(ms(100))]);
        let mut cfg = cfg_ps();
        cfg.cm2.instr_dispatch = SimDuration::ZERO;
        let mut p = Platform::new(cfg, 1);
        let a = p.spawn(Box::new(ScriptedApp::new("a", vec![Phase::Cm2Program(prog.clone())])));
        let b = p.spawn(Box::new(ScriptedApp::new("b", vec![Phase::Cm2Program(prog)])));
        let ta = p.run_until_done(a).expect("app a ran to completion");
        let tb = p.run_until_done(b).expect("app b ran to completion");
        // b waits for a: completions at 100ms and 200ms.
        assert!((ta.as_secs_f64() - 0.1).abs() < 1e-9);
        assert!((tb.as_secs_f64() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sleep_and_backend_compute_elapse_wall_time() {
        let mut p = Platform::new(cfg_ps(), 1);
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![
                Phase::Sleep(SimDuration::from_secs(1)),
                Phase::BackendCompute(SimDuration::from_secs(2)),
            ],
        )));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        assert!((end.as_secs_f64() - 3.0).abs() < 1e-9);
        assert_eq!(p.records(probe).len(), 2);
    }

    #[test]
    fn empty_burst_completes_immediately() {
        let mut p = Platform::new(cfg_ps(), 1);
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![Phase::Send { count: 0, words: 100, dir: Direction::ToParagon }],
        )));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn round_robin_scheduler_approximates_ps() {
        let mut cfg = PlatformConfig::default(); // RR by default
        cfg.frontend.ctx_switch = SimDuration::ZERO;
        let mut p = Platform::new(cfg, 1);
        for i in 0..3 {
            p.spawn(Box::new(ScriptedApp::new(
                format!("hog{i}"),
                vec![Phase::Compute(SimDuration::from_secs(1000))],
            )));
        }
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![Phase::Compute(SimDuration::from_secs(1))],
        )));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        assert!((end.as_secs_f64() - 4.0).abs() < 0.1, "end {end}");
    }

    #[test]
    fn trace_records_cm2_interleaving() {
        let ms = SimDuration::from_millis;
        let prog = crate::phase::Cm2Program::new(vec![
            Cm2Instr::Serial(ms(5)),
            Cm2Instr::Parallel(ms(10)),
            Cm2Instr::Sync,
            Cm2Instr::Serial(ms(5)),
        ]);
        let mut cfg = cfg_ps();
        cfg.cm2.instr_dispatch = SimDuration::ZERO;
        let mut p = Platform::new(cfg, 1);
        p.enable_trace();
        let probe = p.spawn(Box::new(ScriptedApp::new("probe", vec![Phase::Cm2Program(prog)])));
        p.run_until_done(probe).expect("probe ran to completion");
        let tr = p.tracer();
        assert_eq!(tr.lane_label_time("sun:probe", "serial"), ms(10));
        assert_eq!(tr.lane_label_time("cm2:probe", "execute"), ms(10));
    }
}

#[cfg(test)]
mod disk_tests {
    use super::*;
    use crate::config::PlatformConfig;
    use crate::phase::ScriptedApp;

    fn cfg_ps() -> PlatformConfig {
        PlatformConfig {
            frontend: crate::config::FrontendParams::processor_sharing(),
            ..Default::default()
        }
    }

    #[test]
    fn disk_io_takes_seek_plus_transfer() {
        let cfg = cfg_ps();
        let mut p = Platform::new(cfg, 1);
        let probe =
            p.spawn(Box::new(ScriptedApp::new("probe", vec![Phase::DiskIo { words: 1_000_000 }])));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        let expect = cfg.disk.service(1_000_000).as_secs_f64();
        assert!((end.as_secs_f64() - expect).abs() < 1e-9, "end {end}");
        assert_eq!(p.records(probe)[0].kind, PhaseKind::DiskIo);
    }

    #[test]
    fn disk_is_shared_fifo() {
        let cfg = cfg_ps();
        let mut p = Platform::new(cfg, 1);
        let a = p.spawn(Box::new(ScriptedApp::new("a", vec![Phase::DiskIo { words: 500_000 }])));
        let b = p.spawn(Box::new(ScriptedApp::new("b", vec![Phase::DiskIo { words: 500_000 }])));
        let ta = p.run_until_done(a).expect("app a ran to completion");
        let tb = p.run_until_done(b).expect("app b ran to completion");
        let one = cfg.disk.service(500_000).as_secs_f64();
        assert!((ta.as_secs_f64() - one).abs() < 1e-9);
        assert!((tb.as_secs_f64() - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn disk_io_does_not_consume_cpu() {
        // An I/O phase and a compute phase overlap freely: a compute probe
        // running beside a disk-heavy process finishes at dedicated speed.
        let cfg = cfg_ps();
        let mut p = Platform::new(cfg, 1);
        p.spawn(Box::new(ScriptedApp::new("io", vec![Phase::DiskIo { words: 10_000_000 }])));
        let probe = p.spawn(Box::new(ScriptedApp::new(
            "probe",
            vec![Phase::Compute(SimDuration::from_secs(1))],
        )));
        let end = p.run_until_done(probe).expect("probe ran to completion");
        assert!((end.as_secs_f64() - 1.0).abs() < 1e-9, "end {end}");
    }
}
