//! The application-facing execution model.
//!
//! A simulated application is a state machine that yields [`Phase`]s; the
//! platform runtime executes each phase against the machine resources and
//! asks for the next one when it completes. This keeps workloads (the
//! `hetload` crate) decoupled from platform mechanics.

use serde::{Deserialize, Serialize};
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};

/// Which link a transfer crosses, and in which direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Front-end → CM2 over the dedicated channel (front-end CPU driven).
    ToCm2,
    /// CM2 → front-end over the dedicated channel (front-end CPU driven).
    FromCm2,
    /// Front-end → Paragon over the Ethernet.
    ToParagon,
    /// Paragon → front-end over the Ethernet.
    FromParagon,
}

impl Direction {
    /// True for the CM2 channel directions.
    pub fn is_cm2(self) -> bool {
        matches!(self, Direction::ToCm2 | Direction::FromCm2)
    }

    /// True for transfers leaving the front-end.
    pub fn is_outbound(self) -> bool {
        matches!(self, Direction::ToCm2 | Direction::ToParagon)
    }
}

/// One instruction of a CM2 program, as seen by the sequencer interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cm2Instr {
    /// Serial/scalar work executed on the front-end CPU (time-shared).
    Serial(SimDuration),
    /// A parallel instruction executed by the CM2 processors. The
    /// front-end issues it (paying the dispatch cost as serial work) and
    /// may run ahead while the CM2 executes.
    Parallel(SimDuration),
    /// Front-end blocks until the CM2 drains its instruction queue — e.g.
    /// waiting for the result of a reduction.
    Sync,
}

/// A full CM2 program plus its dedicated-cost decomposition helpers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cm2Program {
    /// The instruction stream.
    pub instrs: Vec<Cm2Instr>,
}

impl Cm2Program {
    /// Wraps an instruction stream.
    pub fn new(instrs: Vec<Cm2Instr>) -> Self {
        Cm2Program { instrs }
    }

    /// Total front-end serial demand, **excluding** per-instruction
    /// dispatch costs (add those with [`Cm2Program::serial_total`]).
    pub fn serial_instr_total(&self) -> SimDuration {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Cm2Instr::Serial(d) => Some(*d),
                _ => None,
            })
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Total front-end serial demand including the dispatch cost charged
    /// for each parallel instruction — the paper's `dserial_cm2`.
    pub fn serial_total(&self, dispatch: SimDuration) -> SimDuration {
        self.serial_instr_total() + dispatch * self.parallel_count()
    }

    /// Total CM2 execution demand — the paper's `dcomp_cm2`.
    pub fn parallel_total(&self) -> SimDuration {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Cm2Instr::Parallel(d) => Some(*d),
                _ => None,
            })
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Number of parallel instructions.
    pub fn parallel_count(&self) -> u64 {
        self.instrs.iter().filter(|i| matches!(i, Cm2Instr::Parallel(_))).count() as u64
    }
}

/// One step of an application's lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Dedicated-time CPU demand on the (time-shared) front-end.
    Compute(SimDuration),
    /// Dedicated-time computation on the back-end's space-shared
    /// partition (unaffected by front-end contention).
    BackendCompute(SimDuration),
    /// Send `count` messages of `words` words in an outbound direction.
    Send {
        /// Messages in the burst.
        count: u64,
        /// Words per message.
        words: u64,
        /// Must be an outbound direction.
        dir: Direction,
    },
    /// Receive `count` messages of `words` words from the back-end
    /// (the remote side emits them when this phase starts).
    Recv {
        /// Messages in the burst.
        count: u64,
        /// Words per message.
        words: u64,
        /// Must be an inbound direction.
        dir: Direction,
    },
    /// Run a CM2 program (acquires the sequencer exclusively).
    Cm2Program(Cm2Program),
    /// One local disk operation of `words` words (queued on the shared
    /// disk; consumes no CPU — the §4 I/O extension).
    DiskIo {
        /// Words transferred by the operation.
        words: u64,
    },
    /// Idle wall-clock time (e.g. staggering a generator's start).
    Sleep(SimDuration),
    /// The application is finished.
    Done,
}

impl Phase {
    /// Short label used in phase records and traces.
    pub fn kind(&self) -> PhaseKind {
        match self {
            Phase::Compute(_) => PhaseKind::Compute,
            Phase::BackendCompute(_) => PhaseKind::BackendCompute,
            Phase::Send { .. } => PhaseKind::Send,
            Phase::Recv { .. } => PhaseKind::Recv,
            Phase::Cm2Program(_) => PhaseKind::Cm2Program,
            Phase::DiskIo { .. } => PhaseKind::DiskIo,
            Phase::Sleep(_) => PhaseKind::Sleep,
            Phase::Done => PhaseKind::Done,
        }
    }
}

/// Discriminant of [`Phase`] for bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum PhaseKind {
    Compute,
    BackendCompute,
    Send,
    Recv,
    Cm2Program,
    DiskIo,
    Sleep,
    Done,
}

/// Start/end record of one executed phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// What kind of phase ran.
    pub kind: PhaseKind,
    /// When it started.
    pub start: SimTime,
    /// When it completed.
    pub end: SimTime,
}

impl PhaseRecord {
    /// Elapsed time of the phase.
    pub fn elapsed(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A simulated application: a resumable phase generator.
pub trait AppProcess {
    /// Returns the next phase to execute. `now` is the completion instant
    /// of the previous phase; `rng` is this process's private random
    /// stream. Returning [`Phase::Done`] ends the process.
    fn next_phase(&mut self, now: SimTime, rng: &mut SimRng) -> Phase;

    /// Human-readable name for traces and diagnostics.
    fn name(&self) -> &str {
        "app"
    }
}

/// Blanket impl so closures can serve as quick test apps.
impl<F> AppProcess for F
where
    F: FnMut(SimTime, &mut SimRng) -> Phase,
{
    fn next_phase(&mut self, now: SimTime, rng: &mut SimRng) -> Phase {
        self(now, rng)
    }
}

/// An app that plays a fixed phase script then finishes.
#[derive(Debug, Clone)]
pub struct ScriptedApp {
    name: String,
    phases: std::collections::VecDeque<Phase>,
}

impl ScriptedApp {
    /// Builds a scripted app from a phase list.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        ScriptedApp { name: name.into(), phases: phases.into() }
    }
}

impl AppProcess for ScriptedApp {
    fn next_phase(&mut self, _now: SimTime, _rng: &mut SimRng) -> Phase {
        self.phases.pop_front().unwrap_or(Phase::Done)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_totals() {
        let ms = SimDuration::from_millis;
        let prog = Cm2Program::new(vec![
            Cm2Instr::Serial(ms(2)),
            Cm2Instr::Parallel(ms(5)),
            Cm2Instr::Sync,
            Cm2Instr::Serial(ms(3)),
            Cm2Instr::Parallel(ms(7)),
        ]);
        assert_eq!(prog.serial_instr_total(), ms(5));
        assert_eq!(prog.parallel_total(), ms(12));
        assert_eq!(prog.parallel_count(), 2);
        assert_eq!(prog.serial_total(SimDuration::from_micros(500)), ms(6));
    }

    #[test]
    fn direction_predicates() {
        assert!(Direction::ToCm2.is_cm2() && Direction::FromCm2.is_cm2());
        assert!(!Direction::ToParagon.is_cm2());
        assert!(Direction::ToCm2.is_outbound() && Direction::ToParagon.is_outbound());
        assert!(!Direction::FromParagon.is_outbound());
    }

    #[test]
    fn scripted_app_plays_then_done() {
        let mut app = ScriptedApp::new("probe", vec![Phase::Sleep(SimDuration::from_secs(1))]);
        let mut rng = simcore::rng::root_rng(0);
        assert!(matches!(app.next_phase(SimTime::ZERO, &mut rng), Phase::Sleep(_)));
        assert!(matches!(app.next_phase(SimTime::ZERO, &mut rng), Phase::Done));
        assert!(matches!(app.next_phase(SimTime::ZERO, &mut rng), Phase::Done));
    }

    #[test]
    fn phase_kind_mapping() {
        assert_eq!(Phase::Compute(SimDuration::ZERO).kind(), PhaseKind::Compute);
        assert_eq!(Phase::Done.kind(), PhaseKind::Done);
        let r = PhaseRecord { kind: PhaseKind::Send, start: SimTime(10), end: SimTime(30) };
        assert_eq!(r.elapsed(), SimDuration(20));
    }
}
