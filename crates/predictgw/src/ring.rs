//! Consistent-hash ring with virtual nodes: the gateway's routing map
//! from machine IDs to backend indices.
//!
//! Each backend owns `vnodes` points on a 64-bit hash circle; a machine
//! is routed to the backend owning the first point at or clockwise of
//! the machine's own hash. Virtual nodes smooth the per-backend share
//! (with one point per backend the largest arc is unboundedly lucky;
//! with ~64 the shares concentrate near `1/N`), and consistent hashing
//! keeps the map stable: adding or removing one backend only remaps the
//! keys on the arcs it owned, never shuffles the whole fleet.
//!
//! The hash is FNV-1a (64-bit) — tiny, allocation-free, and good enough
//! for routing: routing needs stability and spread, not collision
//! resistance, and every gateway must compute the identical ring from
//! the identical backend list, so a keyed or seeded hash would be
//! actively wrong here.

/// 64-bit FNV-1a over a byte string.
///
/// Stable across platforms and releases by construction (the constants
/// are the published FNV parameters); routing depends on every gateway
/// computing the identical value for the identical machine ID.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over `backends` backends, `vnodes` virtual
/// points each.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point hash, backend index)`, sorted by hash.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    /// Builds the ring. Both counts are clamped to at least 1: a ring
    /// with no points cannot route, and the gateway refuses to start
    /// with zero backends anyway.
    pub fn new(backends: usize, vnodes: usize) -> Self {
        let backends = backends.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backends * vnodes);
        for b in 0..backends {
            for v in 0..vnodes {
                // The point label bakes in both indices so every vnode
                // lands somewhere unrelated to its neighbors.
                let label = format!("backend-{b}#vnode-{v}");
                points.push((fnv1a(label.as_bytes()), b));
            }
        }
        // Ties (a full 64-bit hash collision) resolve to the lower
        // backend index, deterministically on every gateway.
        points.sort_unstable();
        Ring { points, backends }
    }

    /// How many backends the ring routes across.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend that owns `machine`: the first ring point at or
    /// clockwise of the machine's hash (wrapping past the top).
    pub fn owner(&self, machine: &str) -> usize {
        self.point_at(self.position(machine)).1
    }

    /// All distinct backends in ring order starting at the owner —
    /// the failover preference list for `machine`. The first entry is
    /// [`Ring::owner`]; each later entry is the next distinct backend
    /// clockwise, so two gateways agree on where traffic fails over.
    pub fn preference(&self, machine: &str) -> Vec<usize> {
        let start = self.position(machine);
        let mut order = Vec::with_capacity(self.backends);
        let mut seen = vec![false; self.backends];
        for off in 0..self.points.len() {
            let (_, b) = self.point_at(start + off);
            if !seen[b] {
                seen[b] = true;
                order.push(b);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// Index of the first point at or clockwise of the machine's hash.
    fn position(&self, machine: &str) -> usize {
        let h = fnv1a(machine.as_bytes());
        match self.points.binary_search(&(h, 0)) {
            Ok(i) => i,
            Err(i) => i, // may equal len(): point_at wraps
        }
    }

    /// The ring point at `idx`, wrapping around the circle.
    fn point_at(&self, idx: usize) -> (u64, usize) {
        // The constructor guarantees at least one point.
        let len = self.points.len().max(1);
        *self.points.get(idx % len).unwrap_or(&(0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_published_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn owner_is_deterministic_and_in_range() {
        let ring = Ring::new(4, 64);
        for i in 0..200 {
            let m = format!("machine-{i}");
            let a = ring.owner(&m);
            assert_eq!(a, ring.owner(&m));
            assert!(a < 4);
        }
    }

    #[test]
    fn preference_lists_every_backend_once_starting_at_owner() {
        let ring = Ring::new(5, 32);
        for i in 0..50 {
            let m = format!("m{i}");
            let pref = ring.preference(&m);
            assert_eq!(pref.len(), 5);
            assert_eq!(pref[0], ring.owner(&m));
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn vnodes_balance_the_shares() {
        let ring = Ring::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[ring.owner(&format!("host-{i}.example"))] += 1;
        }
        for &c in &counts {
            // Fair share is 1000; vnodes keep every backend within a
            // loose band of it (the bound is deliberately generous —
            // this guards against gross imbalance, not variance).
            assert!((300..=2200).contains(&c), "share badly skewed: {counts:?}");
        }
    }

    #[test]
    fn growing_the_ring_only_remaps_keys_to_the_new_backend() {
        // Consistent hashing's contract: adding backend N+1 steals some
        // keys for the newcomer but never moves a key between two old
        // backends.
        let before = Ring::new(4, 64);
        let after = Ring::new(5, 64);
        let mut moved = 0;
        let total = 2000;
        for i in 0..total {
            let m = format!("stable-{i}");
            let old = before.owner(&m);
            let new = after.owner(&m);
            if old != new {
                assert_eq!(new, 4, "key moved between pre-existing backends");
                moved += 1;
            }
        }
        // The newcomer takes roughly 1/5th of the keys.
        assert!(moved > 0 && moved < total / 2, "moved {moved} of {total}");
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let ring = Ring::new(0, 0);
        assert_eq!(ring.backends(), 1);
        assert_eq!(ring.owner("anything"), 0);
        assert_eq!(ring.preference("anything"), vec![0]);
    }
}
