//! The replayable load-report journal: an append-only file of
//! length-prefixed binary records, fsync-batched on the write path and
//! streamed back out to warm-start recovering backends.
//!
//! The journal is the gateway's replication log. Every `load_report`
//! accepted by the gateway is appended here *before* it is broadcast to
//! the backends, so the file is a faithful, ordered transcript of the
//! state every backend is supposed to hold. A backend that restarts
//! empty (or missed a window of broadcasts) is brought back to the
//! fleet's state by replaying the suffix it is missing — bit-identical
//! to having received the original broadcasts, because replay preserves
//! the append order and the forecaster state is a pure function of the
//! per-machine report sequence.
//!
//! ## Frame layout
//!
//! Records reuse the wire's framing discipline: `[u32 LE len][u8 tag]`
//! `[payload]`, where `len` counts the tag byte plus the payload. Tags:
//!
//! | tag | name | payload |
//! |-----|------|---------|
//! | `0x01` | `REC_META` | `"PGWJ"` magic + `u8` version (`0x01`) |
//! | `0x02` | `REC_REPORT` | a binproto `load_report` request frame body |
//! | `0x03` | `REC_TRUNCATE` | `f64` LE cutoff: older reports were compacted away |
//!
//! A `REC_REPORT` payload is exactly what [`binproto::encode_request`]
//! produces for the report minus the outer length word, so replay is
//! one [`binproto::decode_request`] per record and the journal format
//! can never drift from the wire format — they are the same bytes.
//!
//! ## Durability
//!
//! Appends go to the OS immediately (`write_all`) but `fsync` is
//! batched: one `sync_data` per [`Journal::fsync_every`] appends, plus
//! one on [`Journal::sync`] (called at snapshot and shutdown). A crash
//! can therefore lose at most the last batch of reports — an explicit
//! trade: reports arrive at fleet rates, and per-record fsync would put
//! a disk round-trip on every request. A torn trailing record (crash
//! mid-append) is detected on open and truncated away.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use proto::binproto;
use proto::proto::LoadReport;
use proto::Request;

/// Journal record: file metadata (first record of every journal).
pub const REC_META: u8 = 0x01;
/// Journal record: one `load_report`, binproto-encoded.
pub const REC_REPORT: u8 = 0x02;
/// Journal record: compaction marker carrying the `f64` cutoff.
pub const REC_TRUNCATE: u8 = 0x03;

/// Magic bytes opening the `REC_META` payload.
pub const META_MAGIC: [u8; 4] = *b"PGWJ";
/// Journal format version.
pub const META_VERSION: u8 = 0x01;

/// Largest record the reader will accept. Reports are tiny (tens of
/// bytes); anything near this is corruption, and bounding it keeps a
/// corrupt length word from driving a huge allocation.
const MAX_RECORD_BYTES: usize = 1 << 20;

/// How many appends may ride on one `fsync` by default.
pub const DEFAULT_FSYNC_EVERY: usize = 64;

/// The gateway's append handle on the journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Records in the file (all tags).
    frames: u64,
    /// File length in bytes.
    bytes: u64,
    /// `REC_REPORT` records in the file.
    reports: u64,
    /// Appends since the last fsync.
    unsynced: usize,
    fsync_every: usize,
    scratch: Vec<u8>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for appending.
    ///
    /// An existing file is scanned front to back: the `REC_META` header
    /// is validated, whole records are counted, and a torn trailing
    /// record is truncated away so the next append lands on a clean
    /// frame boundary. `fsync_every` is clamped to at least 1.
    pub fn open(path: impl Into<PathBuf>, fsync_every: usize) -> io::Result<Journal> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).create(true).append(true).open(&path)?;
        let mut raw = Vec::new();
        // modelcheck-allow: event-loop — full-file read is the replay
        // contract; open runs at startup and at the rare truncation
        // swap, never per request.
        file.read_to_end(&mut raw)?;
        let mut journal = Journal {
            file,
            path,
            frames: 0,
            bytes: 0,
            reports: 0,
            unsynced: 0,
            fsync_every: fsync_every.max(1),
            scratch: Vec::with_capacity(256),
        };
        if raw.is_empty() {
            let mut meta = Vec::with_capacity(META_MAGIC.len() + 1);
            meta.extend_from_slice(&META_MAGIC);
            meta.push(META_VERSION);
            journal.append(REC_META, &meta)?;
            journal.sync()?;
            return Ok(journal);
        }
        let (clean_len, frames, reports) = scan(&raw, journal.path.display())?;
        if clean_len < raw.len() {
            // Torn tail from a crash mid-append: drop it.
            journal.file.set_len(u64::try_from(clean_len).unwrap_or(0))?;
            journal.file.sync_data()?;
        }
        journal.frames = frames;
        journal.reports = reports;
        journal.bytes = u64::try_from(clean_len).unwrap_or(0);
        Ok(journal)
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records in the file (every tag, the `REC_META` header included).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// File length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// `REC_REPORT` records in the file — the replication sequence
    /// number the per-backend cursors are measured against.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Appends one load report. The record reaches the OS before this
    /// returns; it reaches the platter on the next batched fsync.
    pub fn append_report(&mut self, report: &LoadReport) -> io::Result<()> {
        self.scratch.clear();
        let req = Request::LoadReport(report.clone());
        if !binproto::encode_request(&req, &mut self.scratch) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "load report exceeds binproto frame limits",
            ));
        }
        // encode_request framed it as [u32 len][tag][fields]; the
        // journal record's payload is the body (tag onward).
        let body = self.scratch.split_off(4);
        self.append(REC_REPORT, &body)?;
        self.reports += 1;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces the file to stable storage now (resets the fsync batch).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Copies the journal (synced first) to `dst` — the `journal
    /// snapshot` subcommand. The copy is a valid journal: replaying or
    /// restoring from it is indistinguishable from the original.
    pub fn snapshot_to(&mut self, dst: &Path) -> io::Result<u64> {
        self.sync()?;
        std::fs::copy(&self.path, dst)
    }

    /// Drops every report older than `cutoff_at` (exclusive) by
    /// rewriting the journal compacted, leaving a `REC_TRUNCATE` marker
    /// recording the cutoff. Returns how many reports were dropped.
    ///
    /// This is the horizon-keyed truncation valve: reports older than
    /// the forecaster's sliding horizon no longer influence answers, so
    /// once every backend is caught up past them they are dead weight.
    /// It is deliberately opt-in (`--journal-horizon-secs`) because a
    /// truncated journal can no longer warm-start a backend from
    /// before the cutoff.
    pub fn truncate_before(&mut self, cutoff_at: f64) -> io::Result<u64> {
        let kept: Vec<LoadReport> =
            read_reports(&self.path)?.into_iter().filter(|r| r.at >= cutoff_at).collect();
        let kept_n = u64::try_from(kept.len()).unwrap_or(u64::MAX);
        let dropped = self.reports.saturating_sub(kept_n);
        if dropped == 0 {
            return Ok(0);
        }
        let tmp = self.path.with_extension("compact.tmp");
        {
            let mut next = Journal::open(&tmp, usize::MAX)?;
            next.append(REC_TRUNCATE, &cutoff_at.to_le_bytes())?;
            for r in &kept {
                next.append_report(r)?;
            }
            next.sync()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen the compacted file so the append handle and counters
        // track the new contents.
        *self = Journal::open(&self.path, self.fsync_every)?;
        Ok(dropped)
    }

    /// Low-level append of one framed record (no fsync bookkeeping).
    fn append(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(1 + payload.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "journal record exceeds u32 length")
        })?;
        let mut frame = Vec::with_capacity(5 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.push(tag);
        frame.extend_from_slice(payload);
        // modelcheck-allow: event-loop — the durable append IS the
        // journal's job; frames are capped and fsync is batched, so the
        // stall is bounded and by design.
        self.file.write_all(&frame)?;
        self.frames += 1;
        self.bytes += u64::try_from(frame.len()).unwrap_or(0);
        Ok(())
    }
}

/// Walks the raw journal bytes, validating the header and counting
/// whole records. Returns `(clean prefix length, frames, reports)`;
/// a torn trailing record is excluded from the clean prefix, but a
/// malformed record *body* (bad tag, corrupt report) is an error —
/// silently replaying past corruption would desync the fleet.
fn scan(raw: &[u8], path: impl std::fmt::Display) -> io::Result<(usize, u64, u64)> {
    let corrupt = |what: &str| {
        Err(io::Error::new(io::ErrorKind::InvalidData, format!("journal {path}: {what}")))
    };
    let mut pos = 0usize;
    let mut frames = 0u64;
    let mut reports = 0u64;
    while pos < raw.len() {
        let rest = &raw[pos..];
        if rest.len() < 4 {
            break; // torn length word
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&rest[..4]);
        let len = usize::try_from(u32::from_le_bytes(len4)).unwrap_or(usize::MAX);
        if len == 0 || len > MAX_RECORD_BYTES {
            return corrupt("record length is zero or absurd");
        }
        if rest.len() < 4 + len {
            break; // torn record body
        }
        let tag = rest[4];
        let payload = &rest[5..4 + len];
        match tag {
            REC_META => {
                if frames != 0 {
                    return corrupt("REC_META is only valid as the first record");
                }
                if payload.len() < 5 || payload[..4] != META_MAGIC || payload[4] != META_VERSION {
                    return corrupt("bad or unsupported journal header");
                }
            }
            REC_REPORT => {
                match binproto::decode_request(payload) {
                    Ok(Request::LoadReport(_)) => {}
                    Ok(_) => return corrupt("REC_REPORT does not hold a load_report"),
                    Err(_) => return corrupt("undecodable REC_REPORT record"),
                }
                reports += 1;
            }
            REC_TRUNCATE => {
                if payload.len() != 8 {
                    return corrupt("REC_TRUNCATE payload is not 8 bytes");
                }
            }
            _ => return corrupt("unknown record tag"),
        }
        if frames == 0 && tag != REC_META {
            return corrupt("journal does not start with REC_META");
        }
        frames += 1;
        pos += 4 + len;
    }
    Ok((pos, frames, reports))
}

/// Reads every report from a journal file, in append order — the
/// replay source for warm-starting backends and the `journal restore`
/// subcommand.
pub fn read_reports(path: &Path) -> io::Result<Vec<LoadReport>> {
    let raw = std::fs::read(path)?;
    let (clean_len, _, reports) = scan(&raw, path.display())?;
    let mut out = Vec::with_capacity(usize::try_from(reports).unwrap_or(0));
    let mut pos = 0usize;
    while pos < clean_len {
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&raw[pos..pos + 4]);
        let len = usize::try_from(u32::from_le_bytes(len4)).unwrap_or(usize::MAX);
        // scan() already proved every record fits and decodes; the cap
        // re-establishes the bound locally for this second walk.
        let end = (pos + 4 + len).min(clean_len);
        let tag = raw[pos + 4];
        if tag == REC_REPORT {
            if let Ok(Request::LoadReport(r)) = binproto::decode_request(&raw[pos + 5..end]) {
                out.push(r);
            }
        }
        pos += 4 + len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        let pid = std::process::id();
        p.push(format!("predictgw-journal-{pid}-{name}"));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn report(machine: &str, at: f64) -> LoadReport {
        LoadReport { machine: machine.to_string(), at, load: 1.5, comm_frac: 0.25 }
    }

    #[test]
    fn appends_survive_reopen_and_replay_in_order() {
        let path = tmp("roundtrip.j");
        {
            let mut j = Journal::open(&path, 2).expect("open");
            for i in 0..5 {
                j.append_report(&report(&format!("m{i}"), f64::from(i))).expect("append");
            }
            assert_eq!(j.reports(), 5);
            assert_eq!(j.frames(), 6, "meta + 5 reports");
        }
        let j = Journal::open(&path, 2).expect("reopen");
        assert_eq!(j.reports(), 5);
        let replayed = read_reports(&path).expect("read");
        assert_eq!(replayed.len(), 5);
        for (i, r) in replayed.iter().enumerate() {
            assert_eq!(r.machine, format!("m{i}"));
            assert_eq!(r.at, f64::from(u8::try_from(i).unwrap_or(0)));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn.j");
        {
            let mut j = Journal::open(&path, 1).expect("open");
            j.append_report(&report("alpha", 1.0)).expect("append");
            j.append_report(&report("beta", 2.0)).expect("append");
        }
        // Chop bytes off the end, mid-record.
        let raw = std::fs::read(&path).expect("read");
        std::fs::write(&path, &raw[..raw.len() - 3]).expect("write torn");
        let j = Journal::open(&path, 1).expect("reopen");
        assert_eq!(j.reports(), 1, "the torn second report is gone");
        let replayed = read_reports(&path).expect("read");
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].machine, "alpha");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_bodies_are_rejected_not_skipped() {
        let path = tmp("corrupt.j");
        {
            let mut j = Journal::open(&path, 1).expect("open");
            j.append_report(&report("alpha", 1.0)).expect("append");
        }
        let mut raw = std::fs::read(&path).expect("read");
        // The meta record is 10 bytes, so the report's journal tag sits
        // at offset 14 (after its own length word); make it unknown.
        raw[14] = 0xEE;
        std::fs::write(&path, &raw).expect("write corrupt");
        assert!(Journal::open(&path, 1).is_err(), "corruption must not be replayed past");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_drops_old_reports_and_leaves_a_marker() {
        let path = tmp("truncate.j");
        let mut j = Journal::open(&path, 1).expect("open");
        for i in 0..10 {
            j.append_report(&report(&format!("m{i}"), f64::from(i))).expect("append");
        }
        let dropped = j.truncate_before(6.0).expect("truncate");
        assert_eq!(dropped, 6, "at 0..=5 dropped");
        assert_eq!(j.reports(), 4);
        let replayed = read_reports(&path).expect("read");
        assert_eq!(replayed.len(), 4);
        assert!(replayed.iter().all(|r| r.at >= 6.0));
        // Idempotent once compacted.
        assert_eq!(j.truncate_before(6.0).expect("truncate again"), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_is_a_byte_identical_valid_journal() {
        let src = tmp("snap-src.j");
        let dst = tmp("snap-dst.j");
        let mut j = Journal::open(&src, 4).expect("open");
        for i in 0..3 {
            j.append_report(&report("m", f64::from(i))).expect("append");
        }
        j.snapshot_to(&dst).expect("snapshot");
        assert_eq!(std::fs::read(&src).expect("src"), std::fs::read(&dst).expect("dst"));
        assert_eq!(read_reports(&dst).expect("read").len(), 3);
        let _ = std::fs::remove_file(&src);
        let _ = std::fs::remove_file(&dst);
    }

    #[test]
    fn empty_or_garbage_files_are_handled() {
        let path = tmp("fresh.j");
        let j = Journal::open(&path, 1).expect("fresh journal");
        assert_eq!(j.reports(), 0);
        assert_eq!(j.frames(), 1, "just the header");
        drop(j);
        std::fs::write(&path, b"definitely not a journal, much too long").expect("write");
        assert!(Journal::open(&path, 1).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
