//! Gateway routing metrics: hit/miss/failover counters plus per-backend
//! tallies, all relaxed atomics in the same lock-free pattern as
//! predictd's [`predictd::Metrics`].
//!
//! The names follow the routing outcome, not a cache: a **hit** is a
//! request dispatched straight to its ring owner, a **miss** is a
//! request whose owner was already marked unhealthy at dispatch (it
//! went to a ring successor without ever trying the owner), and a
//! **failover** is a request that failed mid-flight on one backend and
//! was re-sent to the next in the preference list. `misses` therefore
//! measure how long the fleet runs degraded; `failovers` measure how
//! often a failure was discovered the hard way.
//!
//! Every counter is a relaxed [`AtomicU64`]: they are independent
//! monotone tallies recorded from every worker thread and the health
//! checker, so a `gw_stats` snapshot may be a few events torn between
//! fields while traffic is in flight — never more, never backwards.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use proto::proto::{BackendStats, GwStatsReply};

/// Per-backend tallies (indexes parallel the configured backend list).
#[derive(Debug, Default)]
struct PerBackend {
    /// Requests this backend answered (including journal broadcasts).
    requests: AtomicU64,
    /// Mid-flight failures re-sent elsewhere after failing here.
    failovers: AtomicU64,
    /// Journal records replayed into this backend on recovery.
    replayed: AtomicU64,
}

/// All gateway metrics, recorded lock-free from any thread.
#[derive(Debug, Default)]
pub struct GwMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    failovers: AtomicU64,
    backends: Vec<PerBackend>,
}

impl GwMetrics {
    /// Fresh, zeroed metrics for `backends` backends.
    pub fn new(backends: usize) -> Self {
        GwMetrics {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            backends: (0..backends).map(|_| PerBackend::default()).collect(),
        }
    }

    /// Counts a request dispatched straight to its ring owner.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Relaxed);
    }

    /// Counts a request whose owner was unhealthy at dispatch.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Relaxed);
    }

    /// Counts a mid-flight failure re-sent to a ring successor, and the
    /// per-backend failover on the backend that failed.
    pub fn failover(&self, failed_backend: usize) {
        self.failovers.fetch_add(1, Relaxed);
        if let Some(b) = self.backends.get(failed_backend) {
            b.failovers.fetch_add(1, Relaxed);
        }
    }

    /// Counts one request answered by `backend`.
    pub fn backend_request(&self, backend: usize) {
        if let Some(b) = self.backends.get(backend) {
            b.requests.fetch_add(1, Relaxed);
        }
    }

    /// Counts `n` journal records replayed into `backend` on recovery.
    pub fn replayed(&self, backend: usize, n: u64) {
        if let Some(b) = self.backends.get(backend) {
            b.replayed.fetch_add(n, Relaxed);
        }
    }

    /// Requests answered so far by `backend` (for tests and logs).
    pub fn backend_requests(&self, backend: usize) -> u64 {
        self.backends.get(backend).map_or(0, |b| b.requests.load(Relaxed))
    }

    /// Snapshot for the `gw_stats` response. `addrs` and `healthy` run
    /// parallel to the backend list; the journal totals and uptime are
    /// owned elsewhere and passed in. Relaxed loads while traffic is in
    /// flight, same torn-by-a-few-events caveat as the module docs.
    pub fn snapshot(
        &self,
        addrs: &[String],
        healthy: &[bool],
        journal_frames: u64,
        journal_bytes: u64,
        uptime_secs: f64,
    ) -> GwStatsReply {
        let backends = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, b)| BackendStats {
                addr: addrs.get(i).cloned().unwrap_or_default(),
                healthy: healthy.get(i).copied().unwrap_or(false),
                requests: b.requests.load(Relaxed),
                failovers: b.failovers.load(Relaxed),
                replayed: b.replayed.load(Relaxed),
            })
            .collect();
        GwStatsReply {
            backends,
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            failovers: self.failovers.load(Relaxed),
            journal_frames,
            journal_bytes,
            uptime_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let m = GwMetrics::new(2);
        m.hit();
        m.hit();
        m.miss();
        m.failover(0);
        m.backend_request(0);
        m.backend_request(1);
        m.backend_request(1);
        m.replayed(1, 7);
        let addrs = vec!["a:1".to_string(), "b:2".to_string()];
        let s = m.snapshot(&addrs, &[true, false], 9, 1234, 2.5);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.backends.len(), 2);
        assert_eq!(s.backends[0].addr, "a:1");
        assert!(s.backends[0].healthy);
        assert_eq!(s.backends[0].requests, 1);
        assert_eq!(s.backends[0].failovers, 1);
        assert_eq!(s.backends[1].requests, 2);
        assert_eq!(s.backends[1].replayed, 7);
        assert!(!s.backends[1].healthy);
        assert_eq!(s.journal_frames, 9);
        assert_eq!(s.journal_bytes, 1234);
        assert_eq!(s.uptime_secs, 2.5);
    }

    #[test]
    fn out_of_range_backend_indices_are_ignored() {
        let m = GwMetrics::new(1);
        m.failover(5);
        m.backend_request(5);
        m.replayed(5, 3);
        let s = m.snapshot(&["x:0".to_string()], &[true], 0, 0, 0.0);
        // The fleet-wide failover still counted; the per-backend ones
        // had nowhere to land and were dropped rather than panicking.
        assert_eq!(s.failovers, 1);
        assert_eq!(s.backends[0].requests, 0);
        assert_eq!(s.backends[0].replayed, 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = GwMetrics::new(2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        m.hit();
                        m.backend_request(usize::try_from(i % 2).unwrap_or(0));
                    }
                });
            }
        });
        let s = m.snapshot(&["a:1".to_string(), "b:2".to_string()], &[true, true], 0, 0, 0.0);
        assert_eq!(s.hits, 4000);
        assert_eq!(s.backends[0].requests + s.backends[1].requests, 4000);
    }
}
