//! Request routing, fan-out, failover, and recovery — the gateway's
//! brain, shared by every event-loop worker and the health checker.
//!
//! ## Replication by broadcast
//!
//! Every accepted `load_report` is (1) appended to the journal and
//! (2) broadcast to every *healthy* backend, both under one sequencing
//! lock, so the journal order **is** the broadcast order. Because the
//! forecaster state is a pure function of the per-machine report
//! sequence, all caught-up backends hold bit-identical state and any of
//! them can answer any placement question exactly as a monolithic
//! predictd would — that equivalence is pinned by a property test and
//! is what makes failover and fan-out semantically free.
//!
//! ## Routing
//!
//! Queries are routed by the consistent-hash [`Ring`]: straight to the
//! machine's owner when it is healthy (a **hit**), to the first healthy
//! ring successor when it is not (a **miss**), re-sent down the
//! preference list on a mid-flight transport failure (a **failover** —
//! safe because `predict`/`rank`/`decide_batch` are read-only and thus
//! idempotent). `decide_batch` additionally fans out: its tasks are
//! chunked across the healthy backends in preference order and the
//! chunk answers are concatenated back into task order, bit-identical
//! to a single backend's answer because every chunk is judged against
//! the same replicated state.
//!
//! ## Recovery
//!
//! The health checker probes every backend with `stats` on an interval;
//! after `health_threshold` consecutive failures a backend is marked
//! down and its traffic drains to successors. On a successful probe the
//! checker compares the backend's own `load_report` counter with the
//! gateway's per-backend replication cursor: a lower counter means the
//! backend restarted empty, so the cursor is rewound; any gap up to the
//! journal's report count is then replayed before the backend is marked
//! up again — so a backend only ever takes traffic against caught-up
//! state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use predictd::ClientError;
use proto::proto::{DecideBatch, Decisions, GwStatsReply, LoadReport};
use proto::{Request, Response};

use crate::backend::{BackendConn, BackendState};
use crate::journal::{self, Journal};
use crate::metrics::GwMetrics;
use crate::ring::Ring;

/// Everything the gateway needs to know at construction.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Backend addresses (`host:port`), in ring order. Must be
    /// non-empty.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Health-probe interval.
    pub health_interval: Duration,
    /// Consecutive failed probes before a backend is marked down.
    pub health_threshold: u32,
    /// Load-report journal path; `None` disables journaling (failover
    /// still works, but recovered backends come back empty and answer
    /// stale until fresh reports arrive — the checker prints a marker).
    pub journal_path: Option<std::path::PathBuf>,
    /// Appends per fsync batch.
    pub fsync_every: usize,
    /// Journal horizon: reports older than `newest - horizon` seconds
    /// are compacted away after appends. `None` keeps everything.
    pub journal_horizon_secs: Option<f64>,
    /// Backend connect timeout.
    pub connect_timeout: Duration,
    /// Backend read/write timeout (`None` = block forever).
    pub io_timeout: Option<Duration>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            backends: Vec::new(),
            vnodes: 64,
            health_interval: Duration::from_millis(1000),
            health_threshold: 3,
            journal_path: None,
            fsync_every: journal::DEFAULT_FSYNC_EVERY,
            journal_horizon_secs: None,
            connect_timeout: Duration::from_secs(1),
            io_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// One worker's set of backend connections. Every event loop (and the
/// health checker) owns its own lanes, so backend I/O never contends
/// between threads.
#[derive(Debug)]
pub struct Lanes {
    conns: Vec<BackendConn>,
}

impl Lanes {
    /// The lane to backend `i` (which must exist; the gateway only
    /// hands out indices from its own backend list).
    fn conn(&mut self, i: usize) -> Option<&mut BackendConn> {
        self.conns.get_mut(i)
    }

    /// Drops the cached connection to backend `i` so the next request
    /// reconnects from scratch.
    pub fn disconnect(&mut self, i: usize) {
        if let Some(c) = self.conns.get_mut(i) {
            c.disconnect();
        }
    }
}

/// The shared gateway: ring, backend states, metrics, journal.
#[derive(Debug)]
pub struct Gateway {
    cfg: GatewayConfig,
    ring: Ring,
    backends: Vec<BackendState>,
    metrics: GwMetrics,
    /// The sequencing lock: journal append + broadcast happen under it,
    /// making the journal order the broadcast order (see module docs).
    /// `None` inside means journaling is disabled; the lock itself is
    /// still taken to serialize broadcasts.
    seq: Mutex<Option<Journal>>,
    started: Instant,
}

impl Gateway {
    /// Builds the gateway, opening (and validating) the journal if one
    /// is configured.
    pub fn new(cfg: GatewayConfig) -> std::io::Result<Gateway> {
        if cfg.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "gateway needs at least one backend",
            ));
        }
        let journal = match &cfg.journal_path {
            Some(p) => Some(Journal::open(p, cfg.fsync_every)?),
            None => None,
        };
        let ring = Ring::new(cfg.backends.len(), cfg.vnodes);
        let backends = cfg.backends.iter().map(|a| BackendState::new(a.clone())).collect();
        let metrics = GwMetrics::new(cfg.backends.len());
        Ok(Gateway {
            cfg,
            ring,
            backends,
            metrics,
            seq: Mutex::new(journal),
            started: Instant::now(),
        })
    }

    /// The gateway's configuration (as validated at construction).
    pub fn config(&self) -> &GatewayConfig {
        &self.cfg
    }

    /// The routing ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The gateway metrics (for tests and the stats path).
    pub fn metrics(&self) -> &GwMetrics {
        &self.metrics
    }

    /// Shared state of backend `i`.
    pub fn backend(&self, i: usize) -> Option<&BackendState> {
        self.backends.get(i)
    }

    /// A fresh set of per-thread backend connections.
    pub fn lanes(&self) -> Lanes {
        Lanes {
            conns: self
                .cfg
                .backends
                .iter()
                .map(|a| BackendConn::new(a.clone(), self.cfg.connect_timeout, self.cfg.io_timeout))
                .collect(),
        }
    }

    /// The sequencing lock, poison-proof: a worker that panicked while
    /// holding it (which the no-panic discipline already forbids) must
    /// not take the whole gateway down with it.
    fn seq_lock(&self) -> MutexGuard<'_, Option<Journal>> {
        // modelcheck-allow: event-loop — the sequencing mutex is the
        // designed serialization point for journal writes; critical
        // sections are bounded (one append + broadcast).
        self.seq.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Handles one request; the flag is true when the gateway should
    /// stop (after sending the response). `shutdown` stops only the
    /// gateway — the backends it fronts keep running.
    pub fn handle(&self, req: &Request, lanes: &mut Lanes) -> (Response, bool) {
        match req {
            Request::LoadReport(r) => (self.on_load_report(r, lanes), false),
            Request::Predict(q) => (self.route_query(&q.machine, req, lanes), false),
            Request::Rank(q) => (self.route_query(&q.machine, req, lanes), false),
            Request::DecideBatch(q) => (self.on_decide_batch(q, req, lanes), false),
            Request::Stats => (Response::GwStats(self.gw_stats()), false),
            Request::Shutdown => (Response::Ok, true),
        }
    }

    /// Journal, then broadcast to every healthy backend, all under the
    /// sequencing lock. The reply is the first healthy backend's `ack`
    /// (they are bit-identical across caught-up backends); a backend
    /// that fails the broadcast simply does not get its cursor
    /// advanced — the health checker replays the gap from the journal.
    fn on_load_report(&self, report: &LoadReport, lanes: &mut Lanes) -> Response {
        let mut guard = self.seq_lock();
        if let Some(j) = guard.as_mut() {
            // modelcheck-allow: lock-order — journal-then-broadcast under
            // the sequencing lock IS the gateway's ordering contract: the
            // journal and the fleet must observe reports in one order.
            if let Err(e) = j.append_report(report) {
                // Refuse what we cannot journal: accepting it would let
                // the fleet and the journal disagree.
                return Response::error(format!("journal append failed: {e}"));
            }
            if let Some(horizon) = self.cfg.journal_horizon_secs {
                // modelcheck-allow: lock-order — truncation must see a
                // quiescent journal; it runs at the size horizon, not
                // per report.
                maybe_truncate(j, report.at, horizon, &self.backends);
            }
        }
        let req = Request::LoadReport(report.clone());
        let mut reply: Option<Response> = None;
        for (i, b) in self.backends.iter().enumerate() {
            if !b.is_healthy() {
                continue;
            }
            let Some(conn) = lanes.conn(i) else { continue };
            // modelcheck-allow: lock-order — the broadcast must stay
            // inside the sequencing critical section (see above); I/O is
            // bounded by the per-connection timeouts.
            match conn.request(&req) {
                Ok(resp) => {
                    b.advance_cursor(1);
                    self.metrics.backend_request(i);
                    reply.get_or_insert(resp);
                }
                Err(e) => {
                    // Not a failover (nothing is re-sent — the journal
                    // replay owns catch-up), but worth a marker.
                    // modelcheck-allow: event-loop — backend-failure marker on the
                    // error path only; the journal replay owns recovery.
                    eprintln!(
                        "predictgw: broadcast to backend {} failed ({e}); journal will catch it up",
                        b.addr()
                    );
                }
            }
        }
        reply.unwrap_or_else(|| Response::error("no healthy backend accepted the report"))
    }

    /// Routes an idempotent single-answer query (`predict`, `rank`)
    /// down the machine's preference list: owner first, ring successors
    /// on unhealth or mid-flight failure.
    fn route_query(&self, machine: &str, req: &Request, lanes: &mut Lanes) -> Response {
        let pref = self.ring.preference(machine);
        self.count_dispatch(&pref);
        let mut last_err: Option<ClientError> = None;
        for &i in &pref {
            let Some(b) = self.backends.get(i) else { continue };
            if !b.is_healthy() {
                continue;
            }
            let Some(conn) = lanes.conn(i) else { continue };
            match conn.request(req) {
                Ok(resp) => {
                    self.metrics.backend_request(i);
                    return resp;
                }
                Err(e) => {
                    self.metrics.failover(i);
                    // modelcheck-allow: event-loop — failover marker on the error
                    // path only, rate-bounded by backend failures.
                    eprintln!(
                        "predictgw: failover: {} for {machine} re-sent past backend {} ({e})",
                        req.kind(),
                        b.addr()
                    );
                    last_err = Some(e);
                }
            }
        }
        match last_err {
            Some(e) => Response::error(format!("every backend failed for {machine}: {e}")),
            None => Response::error(format!("no healthy backend for {machine}")),
        }
    }

    /// `decide_batch` fan-out: tasks are chunked across the healthy
    /// backends in preference order and the answers concatenated back
    /// into task order. Any chunk failure falls back to routing the
    /// whole batch as a single idempotent query — simpler than partial
    /// retry and just as correct.
    fn on_decide_batch(&self, q: &DecideBatch, req: &Request, lanes: &mut Lanes) -> Response {
        let pref = self.ring.preference(&q.machine);
        let healthy: Vec<usize> = pref
            .iter()
            .copied()
            .filter(|&i| self.backends.get(i).is_some_and(BackendState::is_healthy))
            .collect();
        if healthy.len() < 2 || q.tasks.len() < 2 {
            return self.route_query(&q.machine, req, lanes);
        }
        self.count_dispatch(&pref);
        let lanes_count = healthy.len().min(q.tasks.len());
        let chunk_len = q.tasks.len().div_ceil(lanes_count);
        let mut merged: Option<Decisions> = None;
        for (chunk_idx, tasks) in q.tasks.chunks(chunk_len).enumerate() {
            let backend = healthy.get(chunk_idx % lanes_count).copied().unwrap_or(healthy[0]);
            let sub = Request::DecideBatch(DecideBatch {
                machine: q.machine.clone(),
                now: q.now,
                tasks: tasks.to_vec(),
                j_words: q.j_words,
            });
            let resp = self
                .backends
                .get(backend)
                .and_then(|_| lanes.conn(backend))
                .map(|c| c.request(&sub));
            match resp {
                Some(Ok(Response::Decisions(d))) => {
                    self.metrics.backend_request(backend);
                    match merged.as_mut() {
                        None => merged = Some(d),
                        Some(m) => {
                            // Headers (machine, p, stale, forecaster)
                            // are bit-identical across caught-up
                            // backends; keep the first, concatenate the
                            // decisions, AND the cache flags (a merged
                            // answer was only "all cached" if every
                            // chunk was).
                            m.cache_hit = m.cache_hit && d.cache_hit;
                            m.decisions.extend(d.decisions);
                        }
                    }
                }
                Some(Ok(other)) => {
                    // An error (or surprise) response from one chunk:
                    // the batch answer must stay whole, so fall back.
                    // modelcheck-allow: event-loop — fallback marker on the error
                    // path only; the re-route below is the real handling.
                    eprintln!(
                        "predictgw: decide_batch chunk on backend {backend} answered {}; falling back to single-backend routing",
                        other.kind()
                    );
                    self.metrics.failover(backend);
                    return self.route_query(&q.machine, req, lanes);
                }
                Some(Err(e)) => {
                    // modelcheck-allow: event-loop — failover marker on the error
                    // path only, rate-bounded by backend failures.
                    eprintln!(
                        "predictgw: failover: decide_batch chunk failed on backend {backend} ({e}); re-routing whole batch"
                    );
                    self.metrics.failover(backend);
                    return self.route_query(&q.machine, req, lanes);
                }
                None => return self.route_query(&q.machine, req, lanes),
            }
        }
        match merged {
            Some(d) => Response::Decisions(d),
            None => self.route_query(&q.machine, req, lanes),
        }
    }

    /// Tallies the hit/miss of one dispatch against the owner's health.
    fn count_dispatch(&self, pref: &[usize]) {
        let owner_healthy =
            pref.first().and_then(|&i| self.backends.get(i)).is_some_and(BackendState::is_healthy);
        if owner_healthy {
            self.metrics.hit();
        } else {
            self.metrics.miss();
        }
    }

    /// Forces the journal to stable storage (no-op without a journal) —
    /// called at shutdown so the fsync batch is not left in flight.
    pub fn sync_journal(&self) -> std::io::Result<()> {
        match self.seq_lock().as_mut() {
            Some(j) => j.sync(),
            None => Ok(()),
        }
    }

    /// The `gw_stats` snapshot.
    pub fn gw_stats(&self) -> GwStatsReply {
        let (frames, bytes) = {
            let guard = self.seq_lock();
            guard.as_ref().map_or((0, 0), |j| (j.frames(), j.bytes()))
        };
        let healthy: Vec<bool> = self.backends.iter().map(BackendState::is_healthy).collect();
        self.metrics.snapshot(
            &self.cfg.backends,
            &healthy,
            frames,
            bytes,
            self.started.elapsed().as_secs_f64(),
        )
    }

    /// Parses one request line and appends the encoded response line
    /// (with trailing newline) to `out` — the JSON transport hot path,
    /// mirroring `predictd`'s. Returns the shutdown flag.
    pub fn handle_line(&self, line: &str, out: &mut String, lanes: &mut Lanes) -> bool {
        let (resp, shutdown) = match proto::codec::parse_request(line) {
            Some(req) => self.handle(&req, lanes),
            None => match serde_json::from_str::<Request>(line) {
                Ok(req) => self.handle(&req, lanes),
                Err(e) => (Response::error(format!("bad request: {e}")), false),
            },
        };
        if !proto::codec::write_response(&resp, out) {
            serde_json::to_string_into(&resp, out);
        }
        out.push('\n');
        shutdown
    }

    /// Decodes one binary frame body, handles it, and appends the
    /// response frame to `out` — the binary transport hot path.
    pub fn handle_frame(&self, body: &[u8], out: &mut Vec<u8>, lanes: &mut Lanes) -> bool {
        let (resp, shutdown) = match proto::binproto::decode_request(body) {
            Ok(req) => self.handle(&req, lanes),
            Err(e) => (Response::error(format!("bad frame: {e}")), false),
        };
        if !proto::binproto::encode_response(&resp, out) {
            let fallback = Response::error("response exceeds binary frame limits");
            let _ = proto::binproto::encode_response(&fallback, out);
        }
        shutdown
    }

    /// Runs the health checker until `stop` is set: probe every backend
    /// with `stats` each interval, mark down after the configured
    /// threshold of consecutive failures, and on recovery replay the
    /// journal gap before marking up. Run this on its own thread.
    pub fn run_health_checker(&self, stop: &AtomicBool) {
        let mut lanes = self.lanes();
        while !stop.load(Ordering::Acquire) {
            for (i, b) in self.backends.iter().enumerate() {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                self.probe_backend(i, b, &mut lanes);
            }
            // Sleep in small slices so shutdown is prompt even with a
            // long probe interval.
            let mut left = self.cfg.health_interval;
            while !left.is_zero() {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let nap = left.min(Duration::from_millis(50));
                std::thread::sleep(nap);
                left = left.saturating_sub(nap);
            }
        }
    }

    /// One probe of one backend, with the recovery protocol on success.
    fn probe_backend(&self, i: usize, b: &BackendState, lanes: &mut Lanes) {
        let Some(conn) = lanes.conn(i) else { return };
        match conn.request(&Request::Stats) {
            Ok(Response::Stats(stats)) => {
                // Restart detection: the backend reports fewer
                // load_reports than we know we delivered — its state is
                // gone, so rewind the cursor and replay from there.
                let reported = stats.requests.load_report;
                if reported < b.cursor() {
                    eprintln!(
                        "predictgw: backend {} restarted (holds {reported} of {} reports); rewinding for replay",
                        b.addr(),
                        b.cursor()
                    );
                    b.set_cursor(reported);
                } else if reported > b.cursor() {
                    // An ack was lost in flight: the backend processed
                    // more than we counted. Trust its count so replay
                    // does not duplicate.
                    b.set_cursor(reported);
                }
                match self.catch_up(i, b, lanes) {
                    Ok(()) => {
                        if b.mark_up() {
                            eprintln!("predictgw: backend {} marked up", b.addr());
                        }
                    }
                    Err(e) => {
                        eprintln!(
                            "predictgw: backend {} answered probes but replay failed ({e}); keeping it out",
                            b.addr()
                        );
                        if b.mark_probe_failure(self.cfg.health_threshold) {
                            eprintln!("predictgw: backend {} marked down", b.addr());
                        }
                    }
                }
            }
            Ok(other) => {
                eprintln!(
                    "predictgw: probe of backend {} answered {} instead of stats",
                    b.addr(),
                    other.kind()
                );
                if b.mark_probe_failure(self.cfg.health_threshold) {
                    eprintln!("predictgw: backend {} marked down", b.addr());
                }
            }
            Err(e) => {
                if b.mark_probe_failure(self.cfg.health_threshold) {
                    eprintln!(
                        "predictgw: backend {} marked down after {} failed probes ({e})",
                        b.addr(),
                        self.cfg.health_threshold
                    );
                }
            }
        }
    }

    /// Replays the backend's journal gap (`cursor .. journal.reports`)
    /// through the checker's own lane, looping until the cursor is
    /// caught up *at sequencing-lock time* — the final confirmation
    /// holds the lock so no append can slip between "caught up" and the
    /// caller's `mark_up`, and broadcasts resume in journal order.
    fn catch_up(&self, i: usize, b: &BackendState, lanes: &mut Lanes) -> Result<(), ClientError> {
        loop {
            let (target, path) = {
                let guard = self.seq_lock();
                match guard.as_ref() {
                    Some(j) => (j.reports(), j.path().to_path_buf()),
                    None => {
                        // No journal: the backend comes back with
                        // whatever state it has. Mark it loudly — its
                        // answers may be stale until reports refresh.
                        if !b.is_healthy() {
                            eprintln!(
                                "predictgw: backend {} recovering stale (no journal to replay)",
                                b.addr()
                            );
                        }
                        return Ok(());
                    }
                }
            };
            let from = b.cursor();
            if from >= target {
                // Confirm under the lock: if still caught up, we are
                // done and the caller may mark up before any new append
                // broadcasts (appends take the same lock).
                let guard = self.seq_lock();
                let now = guard.as_ref().map_or(0, Journal::reports);
                if b.cursor() >= now {
                    return Ok(());
                }
                continue;
            }
            // Bulk replay outside the lock (reads see whole records;
            // a torn in-flight tail parses as a clean prefix).
            let all = journal::read_reports(&path).map_err(ClientError::Io)?;
            let skip = usize::try_from(from).unwrap_or(usize::MAX);
            let mut replayed = 0u64;
            for r in all.iter().skip(skip) {
                let Some(conn) = lanes.conn(i) else {
                    return Err(ClientError::Protocol("backend lane missing".to_string()));
                };
                match conn.request(&Request::LoadReport(r.clone()))? {
                    Response::Ack(_) => {
                        b.advance_cursor(1);
                        replayed += 1;
                    }
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "replayed report answered {} instead of ack",
                            other.kind()
                        )))
                    }
                }
            }
            if replayed > 0 {
                self.metrics.replayed(i, replayed);
                eprintln!("predictgw: replayed {replayed} reports into backend {}", b.addr());
            }
        }
    }
}

/// Horizon-keyed truncation: once the newest report is `horizon`
/// seconds past the oldest retained report, compact the journal and
/// clamp every backend cursor to the new report count. Cheap to call
/// per append (the scan only runs when the journal actually shrinks).
fn maybe_truncate(j: &mut Journal, newest_at: f64, horizon: f64, backends: &[BackendState]) {
    if !horizon.is_finite() || horizon < 0.0 {
        return;
    }
    let cutoff = newest_at - horizon;
    match j.truncate_before(cutoff) {
        Ok(0) => {}
        Ok(dropped) => {
            // Cursors count journal positions; compaction renumbered
            // them. Every healthy backend was already past the dropped
            // prefix (they received those reports live), so clamping to
            // the new count keeps replay exact for the survivors.
            for b in backends {
                let adjusted = b.cursor().saturating_sub(dropped).min(j.reports());
                b.set_cursor(adjusted);
            }
            // modelcheck-allow: event-loop — compaction notice; truncation
            // runs at the journal size horizon, not per request.
            eprintln!("predictgw: journal compacted, {dropped} reports past the horizon dropped");
        }
        // modelcheck-allow: event-loop — truncation-failure marker on
        // the error path only.
        Err(e) => eprintln!("predictgw: journal truncation failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_refuses_an_empty_backend_list() {
        assert!(Gateway::new(GatewayConfig::default()).is_err());
    }

    #[test]
    fn gw_stats_reflects_configuration_before_any_traffic() {
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(cfg).expect("gateway");
        let s = gw.gw_stats();
        assert_eq!(s.backends.len(), 2);
        assert_eq!(s.backends[0].addr, "127.0.0.1:1");
        assert!(s.backends.iter().all(|b| b.healthy), "presumed healthy at boot");
        assert_eq!(s.hits + s.misses + s.failovers, 0);
        assert_eq!(s.journal_frames, 0, "no journal configured");
    }

    #[test]
    fn shutdown_is_local_to_the_gateway() {
        let cfg =
            GatewayConfig { backends: vec!["127.0.0.1:1".to_string()], ..GatewayConfig::default() };
        let gw = Gateway::new(cfg).expect("gateway");
        let mut lanes = gw.lanes();
        let (resp, stop) = gw.handle(&Request::Shutdown, &mut lanes);
        assert_eq!(resp.kind(), "ok");
        assert!(stop);
    }

    #[test]
    fn queries_with_no_reachable_backend_yield_an_error_response() {
        // Nothing listens on these ports; the gateway must answer an
        // `error` (and count the failovers), never hang or panic.
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
            connect_timeout: Duration::from_millis(100),
            io_timeout: Some(Duration::from_millis(100)),
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(cfg).expect("gateway");
        let mut lanes = gw.lanes();
        let req = Request::Predict(proto::proto::Predict {
            machine: "m0".to_string(),
            now: 1.0,
            task: contention_model::predict::ParagonTask {
                dcomp_sun: contention_model::units::secs(1.0),
                t_paragon: contention_model::units::secs(2.0),
                to_backend: Vec::new(),
                from_backend: Vec::new(),
            },
            j_words: 0,
        });
        let (resp, stop) = gw.handle(&req, &mut lanes);
        assert!(!stop);
        assert_eq!(resp.kind(), "error");
        let s = gw.gw_stats();
        assert_eq!(s.hits, 1, "owner was (optimistically) healthy at dispatch");
        assert_eq!(s.failovers, 2, "both backends failed mid-flight");
    }

    #[test]
    fn journal_append_survives_roundtrip_through_gateway() {
        let mut path = std::env::temp_dir();
        path.push(format!("predictgw-gwtest-{}.j", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            journal_path: Some(path.clone()),
            connect_timeout: Duration::from_millis(100),
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(cfg).expect("gateway");
        let mut lanes = gw.lanes();
        let report = LoadReport { machine: "m1".to_string(), at: 1.0, load: 2.0, comm_frac: 0.5 };
        // No backend is reachable, so the broadcast fails — but the
        // report must already be journaled (journal-then-broadcast).
        let (resp, _) = gw.handle(&Request::LoadReport(report.clone()), &mut lanes);
        assert_eq!(resp.kind(), "error");
        let replayed = journal::read_reports(&path).expect("read journal");
        assert_eq!(replayed, vec![report]);
        let s = gw.gw_stats();
        assert_eq!(s.journal_frames, 2, "meta + one report");
        let _ = std::fs::remove_file(&path);
    }
}
