//! # predictgw — the federation gateway tier
//!
//! One predictd process cannot serve a fleet of millions of machines;
//! the gateway tier is how the service scales out. A `predictgw`
//! daemon sits in front of N predictd backends, speaks both wire
//! codecs on both sides, and routes every request by a consistent hash
//! of its machine ID over a configurable ring with virtual nodes
//! ([`ring`]). Load reports are journaled ([`journal`]) and broadcast
//! to every backend, so any backend can answer any placement question
//! bit-identically to a monolithic daemon — which is what makes
//! failover, scatter-gather, and warm restarts sound:
//!
//! * backend health is probed with periodic `stats` requests; a dead
//!   backend's traffic fails over to its ring successors, and
//!   idempotent requests are retried ([`backend`], [`gateway`]);
//! * `decide_batch` fans out across healthy backends in task chunks
//!   and the merged decisions are bit-identical to a single node's
//!   answer; `rank` can be hedged across replicas and cross-checked;
//! * a recovered or fresh backend is warm-started by replaying the
//!   append-only load-report journal before it takes traffic again,
//!   so it never answers stale where its peers answer fresh.
//!
//! The daemon reuses the evented `poll.rs` engine pattern from
//! predictd: one nonblocking epoll loop per worker with its own
//! `SO_REUSEPORT` listener ([`server`]), per-connection codec sniff
//! and partial-I/O state machines, and relaxed-atomic gateway metrics
//! ([`metrics`]) behind the `gw_stats` wire kind.
//!
//! modelcheck: no-panic, lossy-cast, missing-docs, lock-discipline, atomics, float-env, wire-taint, event-loop, lock-order

#![warn(missing_docs)]

pub mod backend;
pub mod gateway;
pub mod journal;
pub mod metrics;
pub mod ring;
pub mod server;

pub use gateway::{Gateway, GatewayConfig};
pub use journal::Journal;
pub use metrics::GwMetrics;
pub use ring::Ring;
pub use server::GatewayServer;
