//! The gateway daemon binary: bind, announce, federate until
//! `shutdown` — plus offline `journal` subcommands.
//!
//! ```text
//! predictgw [--listen ADDR] [--port-file PATH] --backend ADDR [--backend ADDR]...
//!           [--workers N] [--vnodes N]
//!           [--health-interval-ms MS] [--health-threshold N]
//!           [--journal PATH] [--journal-horizon-secs S] [--fsync-every N]
//!           [--connect-timeout-ms MS] [--io-timeout-ms MS]
//!           [--max-line-bytes N] [--max-frame-bytes N]
//! predictgw journal snapshot --journal SRC --out DST
//! predictgw journal restore --journal SRC --backend ADDR [--backend ADDR]...
//! ```
//!
//! With `--listen` (default `127.0.0.1:0`) the bound address is printed
//! to stdout (and to `--port-file` when given) so callers can find an
//! OS-assigned port — the same contract as predictd.
//!
//! `journal snapshot` copies a journal (synced and validated) to a new
//! path; `journal restore` replays every report in a journal into the
//! given backends directly — the manual warm-start path when a journal
//! outlives its gateway.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use predictd::{Client, ServerConfig};
use predictgw::journal::{read_reports, Journal};
use predictgw::{Gateway, GatewayConfig, GatewayServer};
use proto::{Request, Response};

struct Args {
    listen: String,
    port_file: Option<String>,
    workers: usize,
    cfg: GatewayConfig,
    server: ServerConfig,
}

const USAGE: &str = "usage: predictgw [--listen ADDR] [--port-file PATH] \
--backend ADDR [--backend ADDR]... [--workers N] [--vnodes N] \
[--health-interval-ms MS] [--health-threshold N] \
[--journal PATH] [--journal-horizon-secs S] [--fsync-every N] \
[--connect-timeout-ms MS] [--io-timeout-ms MS] \
[--max-line-bytes N] [--max-frame-bytes N]\n\
       predictgw journal snapshot --journal SRC --out DST\n\
       predictgw journal restore --journal SRC --backend ADDR [--backend ADDR]...";

fn parse_num<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{name}: cannot parse {raw:?}"))
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        port_file: None,
        workers: std::thread::available_parallelism().map_or(4, |n| n.get()).min(8),
        cfg: GatewayConfig::default(),
        server: ServerConfig::default(),
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--backend" => args.cfg.backends.push(value("--backend")?),
            "--workers" => {
                args.workers = parse_num(&value("--workers")?, "--workers")?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--vnodes" => {
                args.cfg.vnodes = parse_num(&value("--vnodes")?, "--vnodes")?;
                if args.cfg.vnodes == 0 {
                    return Err("--vnodes must be at least 1".to_string());
                }
            }
            "--health-interval-ms" => {
                let ms: u64 = parse_num(&value("--health-interval-ms")?, "--health-interval-ms")?;
                args.cfg.health_interval = Duration::from_millis(ms.max(1));
            }
            "--health-threshold" => {
                args.cfg.health_threshold =
                    parse_num(&value("--health-threshold")?, "--health-threshold")?;
                if args.cfg.health_threshold == 0 {
                    return Err("--health-threshold must be at least 1".to_string());
                }
            }
            "--journal" => args.cfg.journal_path = Some(value("--journal")?.into()),
            "--journal-horizon-secs" => {
                let raw: f64 =
                    parse_num(&value("--journal-horizon-secs")?, "--journal-horizon-secs")?;
                if !raw.is_finite() || raw < 0.0 {
                    return Err(
                        "--journal-horizon-secs must be finite and non-negative".to_string()
                    );
                }
                args.cfg.journal_horizon_secs = Some(raw);
            }
            "--fsync-every" => {
                args.cfg.fsync_every = parse_num(&value("--fsync-every")?, "--fsync-every")?;
                if args.cfg.fsync_every == 0 {
                    return Err("--fsync-every must be at least 1".to_string());
                }
            }
            "--connect-timeout-ms" => {
                let ms: u64 = parse_num(&value("--connect-timeout-ms")?, "--connect-timeout-ms")?;
                args.cfg.connect_timeout = Duration::from_millis(ms.max(1));
            }
            "--io-timeout-ms" => {
                let ms: u64 = parse_num(&value("--io-timeout-ms")?, "--io-timeout-ms")?;
                args.cfg.io_timeout = if ms == 0 { None } else { Some(Duration::from_millis(ms)) };
            }
            "--max-line-bytes" => {
                args.server.max_line_bytes =
                    parse_num(&value("--max-line-bytes")?, "--max-line-bytes")?;
                if args.server.max_line_bytes < 64 {
                    return Err("--max-line-bytes must be at least 64".to_string());
                }
            }
            "--max-frame-bytes" => {
                args.server.max_frame_bytes =
                    parse_num(&value("--max-frame-bytes")?, "--max-frame-bytes")?;
                if args.server.max_frame_bytes < 64 {
                    return Err("--max-frame-bytes must be at least 64".to_string());
                }
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.cfg.backends.is_empty() {
        return Err(format!("at least one --backend is required\n{USAGE}"));
    }
    args.server.workers = args.workers;
    Ok(args)
}

/// `journal snapshot --journal SRC --out DST`
fn journal_snapshot(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut src = None;
    let mut out = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--journal" => src = Some(value("--journal")?),
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let src = src.ok_or(format!("--journal is required\n{USAGE}"))?;
    let out = out.ok_or(format!("--out is required\n{USAGE}"))?;
    let mut j = Journal::open(&src, 1).map_err(|e| format!("cannot open {src}: {e}"))?;
    let bytes = j
        .snapshot_to(std::path::Path::new(&out))
        .map_err(|e| format!("cannot snapshot to {out}: {e}"))?;
    println!("snapshot {out}: {} reports, {bytes} bytes", j.reports());
    Ok(())
}

/// `journal restore --journal SRC --backend ADDR...`
fn journal_restore(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut src = None;
    let mut backends = Vec::new();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--journal" => src = Some(value("--journal")?),
            "--backend" => backends.push(value("--backend")?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let src = src.ok_or(format!("--journal is required\n{USAGE}"))?;
    if backends.is_empty() {
        return Err(format!("at least one --backend is required\n{USAGE}"));
    }
    let reports = read_reports(std::path::Path::new(&src))
        .map_err(|e| format!("cannot read journal {src}: {e}"))?;
    for addr in &backends {
        let mut client = Client::connect_binary_timeout(
            addr.as_str(),
            Duration::from_secs(2),
            Some(Duration::from_secs(10)),
        )
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let mut sent = 0u64;
        for r in &reports {
            match client.request(&Request::LoadReport(r.clone())) {
                Ok(Response::Ack(_)) => sent += 1,
                Ok(other) => {
                    return Err(format!(
                        "backend {addr} answered {} to a replayed report",
                        other.kind()
                    ))
                }
                Err(e) => return Err(format!("replay into {addr} failed after {sent}: {e}")),
            }
        }
        println!("restored {sent} reports into {addr}");
    }
    Ok(())
}

fn serve(args: Args) -> Result<(), String> {
    use std::net::ToSocketAddrs;
    let gateway = Gateway::new(args.cfg).map_err(|e| format!("cannot start gateway: {e}"))?;
    let addr = args
        .listen
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {}: {e}", args.listen))?
        .find(std::net::SocketAddr::is_ipv4)
        .ok_or_else(|| format!("{}: no IPv4 address (the gateway needs one)", args.listen))?;
    let server = GatewayServer::bind(addr, args.workers)
        .map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
    let bound = server.local_addr();
    println!(
        "listening on {bound} (gateway, {} workers, {} backends)",
        args.workers,
        gateway.config().backends.len()
    );
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{bound}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let stop = AtomicBool::new(false);
    let served = std::thread::scope(|scope| {
        let checker = scope.spawn(|| gateway.run_health_checker(&stop));
        let served = server.run(&gateway, &args.server, &stop);
        stop.store(true, Ordering::Release);
        let _ = checker.join();
        served
    });
    if let Err(e) = gateway.sync_journal() {
        eprintln!("predictgw: final journal sync failed: {e}");
    }
    served.map_err(|e| format!("serve failed: {e}"))
}

fn run() -> Result<(), String> {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("journal") {
        let _ = argv.next();
        return match argv.next().as_deref() {
            Some("snapshot") => journal_snapshot(argv),
            Some("restore") => journal_restore(argv),
            _ => Err(format!("journal needs a subcommand (snapshot|restore)\n{USAGE}")),
        };
    }
    serve(parse_args(argv)?)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("predictgw: {msg}");
            ExitCode::from(2)
        }
    }
}
