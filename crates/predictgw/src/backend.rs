//! Per-backend state and connections: the shared health/cursor record
//! every thread consults, and the per-thread lazy connection each
//! worker (and the health checker) drives requests through.
//!
//! The split matters: health and the replication cursor are fleet-wide
//! facts — one backend is down for *everyone* — so they live in shared
//! atomics ([`BackendState`]). Connections are the opposite: sockets
//! are cheap and mutably owned, so each event-loop worker keeps its own
//! [`BackendConn`] per backend and never contends on I/O. A connection
//! failure tears down only the caller's socket; marking the backend
//! down is the health checker's call (via its consecutive-failure
//! threshold), not any single request's.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use predictd::{Client, ClientError};
use proto::{Request, Response};

/// Fleet-wide facts about one backend, shared by every thread.
#[derive(Debug)]
pub struct BackendState {
    addr: String,
    /// Routable right now? Flipped only by the health checker.
    healthy: AtomicBool,
    /// Consecutive failed health probes (reset by any success).
    probe_failures: AtomicU32,
    /// Replication cursor: how many journal reports this backend has
    /// been sent (broadcast or replay). Compared against the journal's
    /// report count to size the catch-up suffix, and against the
    /// backend's own `load_report` counter to detect a restart.
    sent_reports: AtomicU64,
}

impl BackendState {
    /// Fresh state for a backend at `addr`, presumed healthy until the
    /// first probe says otherwise (so a cold fleet takes traffic
    /// immediately instead of waiting out a probe interval).
    pub fn new(addr: String) -> Self {
        BackendState {
            addr,
            healthy: AtomicBool::new(true),
            probe_failures: AtomicU32::new(0),
            sent_reports: AtomicU64::new(0),
        }
    }

    /// The backend's address, as configured.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Routable right now? Acquire pairs with the checker's Release so
    /// a worker that sees `true` also sees the replay that preceded it.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Records a successful probe; returns `true` on a Down→Up
    /// transition (the caller replays the journal *before* calling
    /// this, so traffic only resumes against caught-up state).
    pub fn mark_up(&self) -> bool {
        self.probe_failures.store(0, Ordering::Relaxed);
        !self.healthy.swap(true, Ordering::Release)
    }

    /// Records a failed probe; after `threshold` consecutive failures
    /// the backend is marked down. Returns `true` on the Up→Down
    /// transition.
    pub fn mark_probe_failure(&self, threshold: u32) -> bool {
        let failures = self.probe_failures.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        if failures >= threshold {
            self.healthy.swap(false, Ordering::Release)
        } else {
            false
        }
    }

    /// Reports sent to this backend so far (the replication cursor).
    pub fn cursor(&self) -> u64 {
        self.sent_reports.load(Ordering::Acquire)
    }

    /// Advances the replication cursor by `n` sent reports.
    pub fn advance_cursor(&self, n: u64) {
        self.sent_reports.fetch_add(n, Ordering::Release);
    }

    /// Rewinds the cursor to `to` (journal truncation compacted away
    /// records below it, or a replay proved the backend holds exactly
    /// `to` reports).
    pub fn set_cursor(&self, to: u64) {
        self.sent_reports.store(to, Ordering::Release);
    }
}

/// One thread's lazily-connected binary-codec channel to one backend.
#[derive(Debug)]
pub struct BackendConn {
    addr: String,
    client: Option<Client>,
    connect_timeout: Duration,
    io_timeout: Option<Duration>,
}

impl BackendConn {
    /// A handle that will connect on first use.
    pub fn new(addr: String, connect_timeout: Duration, io_timeout: Option<Duration>) -> Self {
        BackendConn { addr, client: None, connect_timeout, io_timeout }
    }

    /// Sends one request and decodes the response, connecting (or
    /// reconnecting) as needed. Any transport error tears down this
    /// thread's socket so the next call starts from a clean connect —
    /// the caller decides whether to fail over; this type never does.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if self.client.is_none() {
            self.client = Some(Client::connect_binary_timeout(
                self.addr.as_str(),
                self.connect_timeout,
                self.io_timeout,
            )?);
        }
        let Some(client) = self.client.as_mut() else {
            return Err(ClientError::Protocol("no connection".to_string()));
        };
        match client.request(req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.client = None;
                Err(e)
            }
        }
    }

    /// Drops the cached connection (e.g. after the health checker saw
    /// the backend bounce: the old socket may be half-dead).
    pub fn disconnect(&mut self) {
        self.client = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_transitions_respect_the_threshold() {
        let b = BackendState::new("127.0.0.1:1".to_string());
        assert!(b.is_healthy(), "presumed healthy at boot");
        assert!(!b.mark_probe_failure(3), "1st failure: still up");
        assert!(!b.mark_probe_failure(3), "2nd failure: still up");
        assert!(b.is_healthy());
        assert!(b.mark_probe_failure(3), "3rd failure: transitions down");
        assert!(!b.is_healthy());
        assert!(!b.mark_probe_failure(3), "already down: no transition");
        assert!(b.mark_up(), "recovery transitions up");
        assert!(!b.mark_up(), "already up: no transition");
        // A success reset the failure streak: two more failures do not
        // re-trip a threshold of 3.
        assert!(!b.mark_probe_failure(3));
        assert!(!b.mark_probe_failure(3));
        assert!(b.is_healthy());
    }

    #[test]
    fn cursor_advances_and_rewinds() {
        let b = BackendState::new("127.0.0.1:1".to_string());
        assert_eq!(b.cursor(), 0);
        b.advance_cursor(5);
        b.advance_cursor(2);
        assert_eq!(b.cursor(), 7);
        b.set_cursor(3);
        assert_eq!(b.cursor(), 3);
    }

    #[test]
    fn conn_surfaces_connect_failure_and_stays_usable() {
        // A port from the ephemeral range with nothing listening:
        // connect fails fast, and the handle can be retried.
        let mut c = BackendConn::new(
            "127.0.0.1:1".to_string(),
            Duration::from_millis(200),
            Some(Duration::from_millis(200)),
        );
        assert!(c.request(&Request::Stats).is_err());
        assert!(c.request(&Request::Stats).is_err(), "retryable after failure");
        c.disconnect();
    }
}
