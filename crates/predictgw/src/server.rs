//! The gateway's client-facing transport: the same readiness-based
//! event-loop engine as predictd's evented server — nonblocking
//! accept/read/write over epoll, thread-per-core `SO_REUSEPORT`
//! listeners, per-connection codec sniff and partial-I/O state
//! machines — with one structural difference: each worker owns a set of
//! backend [`Lanes`](crate::gateway::Lanes) it forwards through.
//!
//! Backend calls are blocking (bounded by the configured I/O timeout),
//! which is a deliberate trade: the gateway's unit of work is "forward
//! and wait for one answer", its concurrency comes from running one
//! loop per core, and a wedged backend costs at most the timeout before
//! the failover path takes over. The event loop's nonblocking
//! discipline still buys what it bought predictd — slow *clients*
//! never pin a worker, backpressure is per-connection, and shutdown
//! drains cleanly.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use predictd::poll::{
    bind_reuseport, Epoll, EpollEvent, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use predictd::ServerConfig;
use proto::binproto;
use proto::Response;

use crate::gateway::{Gateway, Lanes};

/// Reads per readiness wakeup go through this per-loop scratch buffer.
const SCRATCH_BYTES: usize = 64 * 1024;

/// Stop reading from a connection whose unsent response backlog grows
/// past this; reading resumes once the peer drains below it.
const HIGH_WATER_BYTES: usize = 1 << 20;

/// Readiness records fetched per `epoll_wait`.
const MAX_EVENTS: usize = 256;

/// How a connection's bytes are interpreted.
enum Mode {
    /// First byte not seen yet.
    Sniff,
    /// Newline-delimited JSON.
    Json,
    /// Length-prefixed binary frames (preamble already validated).
    Binary,
}

/// One client connection's state machine (see the predictd evented
/// server for the full rationale; this is the same machine).
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    mode: Mode,
    json_discard: bool,
    bin_discard: usize,
    closing: bool,
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::with_capacity(4096),
            wbuf: Vec::with_capacity(4096),
            wpos: 0,
            mode: Mode::Sniff,
            json_discard: false,
            bin_discard: 0,
            closing: false,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// A bound-but-not-yet-running gateway server: bind first (so the
/// caller learns the port), then [`GatewayServer::run`] until a
/// `shutdown` request arrives.
pub struct GatewayServer {
    listeners: Vec<TcpListener>,
    addr: SocketAddr,
}

impl GatewayServer {
    /// Binds `workers` `SO_REUSEPORT` listeners (clamped to ≥ 1) on
    /// `addr` — IPv4 only, like the predictd evented engine.
    pub fn bind(addr: SocketAddr, workers: usize) -> io::Result<Self> {
        let v4 = match addr {
            SocketAddr::V4(v4) => v4,
            SocketAddr::V6(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "gateway listens on IPv4 only",
                ))
            }
        };
        let workers = workers.max(1);
        let first = bind_reuseport(v4)?;
        let bound = first.local_addr()?;
        let port = bound.port();
        let mut listeners = vec![first];
        for _ in 1..workers {
            listeners.push(bind_reuseport(SocketAddrV4::new(*v4.ip(), port))?);
        }
        Ok(GatewayServer { listeners, addr: bound })
    }

    /// The address the listeners are bound to (port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs one event loop per listener until a `shutdown` request is
    /// handled on any of them; `stop` is also honored (and set), so the
    /// caller can wind down the health checker with the same flag.
    pub fn run(self, gateway: &Gateway, cfg: &ServerConfig, stop: &AtomicBool) -> io::Result<()> {
        let mut wakers = Vec::with_capacity(self.listeners.len());
        for _ in 0..self.listeners.len() {
            wakers.push(Waker::new()?);
        }
        let mut listeners = self.listeners;
        std::thread::scope(|scope| {
            let wakers = &wakers[..];
            let mut handles = Vec::new();
            for (i, listener) in listeners.drain(1..).enumerate() {
                handles.push(scope.spawn(move || {
                    event_loop(listener, &wakers[i + 1], gateway, cfg, stop, wakers)
                }));
            }
            let first = match listeners.pop() {
                Some(l) => event_loop(l, &wakers[0], gateway, cfg, stop, wakers),
                None => Ok(()),
            };
            for h in handles {
                match h.join() {
                    Ok(r) => r?,
                    Err(_) => return Err(io::Error::other("gateway event loop panicked")),
                }
            }
            first
        })
    }
}

/// Slab token of the listener.
const TOKEN_LISTENER: u64 = 0;
/// Slab token of the wakeup eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token available for connections.
const TOKEN_CONNS: u64 = 2;

/// One worker's loop: accept, sniff, parse, forward through its own
/// backend lanes, write — client I/O nonblocking and level-triggered.
// modelcheck: event-loop
fn event_loop(
    listener: TcpListener,
    waker: &Waker,
    gateway: &Gateway,
    cfg: &ServerConfig,
    stop: &AtomicBool,
    all_wakers: &[Waker],
) -> io::Result<()> {
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
    epoll.add(waker.as_raw_fd(), TOKEN_WAKER, EPOLLIN)?;
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    // This worker's private connections to every backend. Forwarding
    // through them blocks (bounded by the backend I/O timeout); see the
    // module docs for why that is the chosen trade.
    let mut lanes = gateway.lanes();
    // After `stop`, linger briefly to flush pending responses (most
    // importantly the `ok` reply to the shutdown request itself).
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if stop.load(Ordering::Acquire) {
            let deadline = *drain_deadline
                .get_or_insert_with(|| Instant::now() + std::time::Duration::from_secs(1));
            let pending = conns.iter().flatten().any(|c| c.pending_write() > 0);
            if !pending || Instant::now() >= deadline {
                return Ok(());
            }
        }
        let timeout = if drain_deadline.is_some() { 20 } else { -1 };
        let n = epoll.wait(&mut events, timeout)?;
        for ev in events.iter().take(n) {
            let token = ev.data;
            let bits = ev.events;
            match token {
                TOKEN_LISTENER => accept_ready(&listener, &epoll, &mut conns, &mut free),
                TOKEN_WAKER => waker.drain(),
                t => {
                    let idx = usize::try_from(t.saturating_sub(TOKEN_CONNS)).unwrap_or(usize::MAX);
                    let Some(slot) = conns.get_mut(idx) else { continue };
                    let Some(conn) = slot.as_mut() else { continue };
                    let mut dead = bits & (EPOLLERR | EPOLLHUP) != 0;
                    if !dead && bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                        dead = !on_readable(
                            conn,
                            gateway,
                            cfg,
                            &mut scratch,
                            &mut lanes,
                            stop,
                            all_wakers,
                        );
                    }
                    if !dead {
                        dead = !on_writable(conn);
                    }
                    if dead || (conn.closing && conn.pending_write() == 0) {
                        let _ = epoll.delete(conn.stream.as_raw_fd());
                        *slot = None;
                        free.push(idx);
                    } else {
                        refresh_interest(&epoll, conn, t);
                    }
                }
            }
        }
    }
}

/// Accepts every pending connection (level-triggered listener).
fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let fd = stream.as_raw_fd();
                let conn = Conn::new(stream);
                let idx = match free.pop() {
                    Some(i) => {
                        conns[i] = Some(conn);
                        i
                    }
                    None => {
                        conns.push(Some(conn));
                        conns.len() - 1
                    }
                };
                let token = TOKEN_CONNS + u64::try_from(idx).unwrap_or(0);
                if epoll.add(fd, token, EPOLLIN | EPOLLRDHUP).is_err() {
                    conns[idx] = None;
                    free.push(idx);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Drains the socket into the connection's read buffer and processes
/// every complete request. Returns false when the connection is dead.
fn on_readable(
    conn: &mut Conn,
    gateway: &Gateway,
    cfg: &ServerConfig,
    scratch: &mut [u8],
    lanes: &mut Lanes,
    stop: &AtomicBool,
    all_wakers: &[Waker],
) -> bool {
    if conn.closing {
        return true;
    }
    loop {
        if conn.pending_write() > HIGH_WATER_BYTES {
            break;
        }
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.closing = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    process_rbuf(conn, gateway, cfg, lanes, stop, all_wakers);
    true
}

/// Sniffs the codec if needed, then parses and handles everything
/// complete in `rbuf`, appending encoded responses to `wbuf`.
// modelcheck: event-loop
fn process_rbuf(
    conn: &mut Conn,
    gateway: &Gateway,
    cfg: &ServerConfig,
    lanes: &mut Lanes,
    stop: &AtomicBool,
    all_wakers: &[Waker],
) {
    if matches!(conn.mode, Mode::Sniff) && !conn.rbuf.is_empty() {
        if conn.rbuf[0] == binproto::MAGIC {
            if conn.rbuf.len() < binproto::PREAMBLE.len() {
                return; // partial preamble: wait for more bytes
            }
            if conn.rbuf[..4] == binproto::PREAMBLE {
                conn.rbuf.drain(..4);
                conn.mode = Mode::Binary;
            } else {
                let _ = binproto::encode_response(
                    &Response::error("bad preamble: expected BD 50 44 01"),
                    &mut conn.wbuf,
                );
                conn.closing = true;
                return;
            }
        } else {
            conn.mode = Mode::Json;
        }
    }
    let shutdown = match conn.mode {
        Mode::Sniff => false,
        Mode::Json => process_json(conn, gateway, cfg, lanes),
        Mode::Binary => process_binary(conn, gateway, cfg, lanes),
    };
    if shutdown {
        conn.closing = true;
        stop.store(true, Ordering::Release);
        for w in all_wakers {
            w.wake();
        }
    }
}

/// JSON mode: handle every complete line in `rbuf`. Returns the
/// shutdown flag.
fn process_json(conn: &mut Conn, gateway: &Gateway, cfg: &ServerConfig, lanes: &mut Lanes) -> bool {
    let mut shutdown = false;
    let mut consumed = 0;
    let mut out = String::new();
    while let Some(nl) = conn.rbuf[consumed..].iter().position(|&b| b == b'\n') {
        let line_end = consumed + nl;
        if conn.json_discard {
            conn.json_discard = false;
            consumed = line_end + 1;
            continue;
        }
        let line = &conn.rbuf[consumed..line_end];
        consumed = line_end + 1;
        if line.len() > cfg.max_line_bytes {
            append_json_error(
                &mut out,
                &format!("request line exceeds {} bytes", cfg.max_line_bytes),
            );
        } else {
            match std::str::from_utf8(line) {
                Ok(text) => {
                    let text = text.trim();
                    if !text.is_empty() && gateway.handle_line(text, &mut out, lanes) {
                        shutdown = true;
                        break;
                    }
                }
                Err(_) => append_json_error(&mut out, "request line is not valid UTF-8"),
            }
        }
    }
    conn.wbuf.extend_from_slice(out.as_bytes());
    conn.rbuf.drain(..consumed);
    if conn.json_discard {
        conn.rbuf.clear();
    } else if conn.rbuf.len() > cfg.max_line_bytes {
        let mut err = String::new();
        append_json_error(&mut err, &format!("request line exceeds {} bytes", cfg.max_line_bytes));
        conn.wbuf.extend_from_slice(err.as_bytes());
        conn.rbuf.clear();
        conn.json_discard = true;
    }
    shutdown
}

/// Binary mode: handle every complete frame in `rbuf`. Returns the
/// shutdown flag.
fn process_binary(
    conn: &mut Conn,
    gateway: &Gateway,
    cfg: &ServerConfig,
    lanes: &mut Lanes,
) -> bool {
    let mut shutdown = false;
    let mut consumed = 0;
    loop {
        if conn.bin_discard > 0 {
            let available = conn.rbuf.len() - consumed;
            let skip = conn.bin_discard.min(available);
            consumed += skip;
            conn.bin_discard -= skip;
            if conn.bin_discard > 0 {
                break;
            }
        }
        let rest = &conn.rbuf[consumed..];
        if rest.len() < 4 {
            break;
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&rest[..4]);
        let len = usize::try_from(u32::from_le_bytes(len4)).unwrap_or(usize::MAX);
        if len == 0 {
            consumed += 4;
            let _ = binproto::encode_response(
                &Response::error("bad frame: empty frame"),
                &mut conn.wbuf,
            );
            continue;
        }
        if len > cfg.max_frame_bytes {
            consumed += 4;
            conn.bin_discard = len;
            let _ = binproto::encode_response(
                &Response::error(format!("frame exceeds {} bytes", cfg.max_frame_bytes)),
                &mut conn.wbuf,
            );
            continue;
        }
        if rest.len() < 4 + len {
            break; // partial frame: wait for more bytes
        }
        let done = gateway.handle_frame(&rest[4..4 + len], &mut conn.wbuf, lanes);
        consumed += 4 + len;
        if done {
            shutdown = true;
            break;
        }
    }
    conn.rbuf.drain(..consumed);
    shutdown
}

/// Appends a JSON `error` response line.
fn append_json_error(out: &mut String, message: &str) {
    serde_json::to_string_into(&Response::error(message), out);
    out.push('\n');
}

/// Pushes pending response bytes into the socket, advancing the
/// partial-write cursor. Returns false when the connection is dead.
fn on_writable(conn: &mut Conn) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > HIGH_WATER_BYTES {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    true
}

/// Re-registers the connection's epoll interest to match its state.
fn refresh_interest(epoll: &Epoll, conn: &mut Conn, token: u64) {
    let mut want = 0;
    if !conn.closing && conn.pending_write() <= HIGH_WATER_BYTES {
        want |= EPOLLIN | EPOLLRDHUP;
    }
    if conn.pending_write() > 0 {
        want |= EPOLLOUT;
    }
    if want != conn.interest && epoll.modify(conn.stream.as_raw_fd(), token, want).is_ok() {
        conn.interest = want;
    }
}
