//! Federation must be invisible in the answers: the gateway broadcasts
//! every load report to all backends, so each backend holds the full
//! fleet state and any of them answers any query identically. Pinned
//! here by replaying random report/predict/batch/rank interleavings
//! through 1 gateway + 2 evented predictd backends over TCP and through
//! one in-process monolithic `Service`, and demanding bit-identical
//! responses.
//!
//! The one deliberate exception is `cache_hit`: queries route to one
//! owner (and batches fan out across backends), so per-backend profile
//! caches warm differently than the monolith's — the flag is replica
//! metadata, not an answer, and is normalized before comparing. Every
//! other field (`p`, `stale`, `forecaster`, decisions, rankings,
//! ack pedigree) must match exactly.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

use contention_model::dataset::DataSet;
use contention_model::predict::ParagonTask;
use contention_model::units::secs;
use predictd::proto::{DecideBatch, LoadReport, Predict, Rank, Request, Response};
use predictd::{Client, EventedServer, ServerConfig, Service, ServiceConfig};
use predictgw::{Gateway, GatewayConfig, GatewayServer};
use proptest::prelude::*;

fn task(scale: f64) -> ParagonTask {
    ParagonTask {
        dcomp_sun: secs(10.0 + scale),
        t_paragon: secs(1.0 + scale * 0.1),
        to_backend: vec![DataSet::burst(10, 1500)],
        from_backend: vec![DataSet::single(800)],
    }
}

/// Boots one evented predictd backend on a loopback port. Everything is
/// leaked — the federation lives for the whole test process.
fn spawn_backend() -> SocketAddr {
    let service: &'static Service =
        Box::leak(Box::new(Service::with_default_predictor(ServiceConfig::default())));
    let cfg: &'static ServerConfig = Box::leak(Box::new(ServerConfig::default()));
    let server = EventedServer::bind("127.0.0.1:0".parse().expect("loopback"), 1).expect("bind");
    let addr = server.local_addr();
    thread::spawn(move || server.run(service, cfg).expect("backend run"));
    addr
}

/// Boots the gateway over `backends`. No health checker: the backends
/// are presumed healthy at boot and never die in this test.
fn spawn_gateway(backends: Vec<String>) -> SocketAddr {
    let gateway: &'static Gateway = Box::leak(Box::new(
        Gateway::new(GatewayConfig { backends, ..GatewayConfig::default() }).expect("gateway"),
    ));
    let cfg: &'static ServerConfig = Box::leak(Box::new(ServerConfig::default()));
    let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let server = GatewayServer::bind("127.0.0.1:0".parse().expect("loopback"), 1).expect("bind");
    let addr = server.local_addr();
    thread::spawn(move || server.run(gateway, cfg, stop).expect("gateway run"));
    addr
}

/// One federation (2 backends + 1 gateway), booted once and shared by
/// every proptest case; cases isolate themselves with fresh machine
/// names (per-machine state never crosses machines).
fn gateway_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let backends = (0..2).map(|_| spawn_backend().to_string()).collect();
        spawn_gateway(backends)
    })
}

/// A process-unique case number, so machine names never collide between
/// cases even though the backends persist.
fn fresh_case() -> usize {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    CASE.fetch_add(1, Ordering::Relaxed)
}

/// One step of a replayed session, decoded from a generated tuple of
/// `(kind, machine, dt, load, frac, scale, n)` — the same 3:3:1:1
/// report/predict/batch/rank mix as the shard-equivalence test.
type RawOp = (usize, usize, f64, f64, f64, f64, usize);

fn request_for(raw: &RawOp, case: usize, now: f64) -> Request {
    let (kind, machine, _dt, load, frac, scale, n) = *raw;
    let machine = format!("eq{case}-m{machine}");
    match kind {
        0..=2 => Request::LoadReport(LoadReport { machine, at: now, load, comm_frac: frac }),
        3..=5 => Request::Predict(Predict { machine, now, task: task(scale), j_words: 500 }),
        6 => Request::DecideBatch(DecideBatch {
            machine,
            now,
            // ≥ 2 tasks with 2 healthy backends takes the fan-out/merge
            // path; n == 1 exercises the single-route fallback.
            tasks: (0..n).map(|i| task(i as f64)).collect(),
            j_words: 500,
        }),
        _ => Request::Rank(Rank {
            machine,
            now,
            workflow: hetsched::example::workflow(),
            front_end: 0,
            j_words: 500,
            limit: n,
        }),
    }
}

/// Strips replica metadata that legitimately differs between a fanned-
/// out federation and a monolith (see the module docs).
fn normalized(resp: Response) -> Response {
    match resp {
        Response::Prediction(mut p) => {
            p.cache_hit = false;
            Response::Prediction(p)
        }
        Response::Decisions(mut d) => {
            d.cache_hit = false;
            Response::Decisions(d)
        }
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// 1 gateway + 2 backends == 1 monolithic predictd, for every
    /// request sequence: same acks, same decisions, same rankings.
    #[test]
    fn federation_is_bit_identical_to_a_monolith(
        ops in proptest::collection::vec(
            (0..8usize, 0..5usize, 0.0..1.5f64, 0.0..6.0f64, -0.5..1.0f64, 0.0..20.0f64, 1..5usize),
            1..30,
        )
    ) {
        let case = fresh_case();
        let mono = Service::with_default_predictor(ServiceConfig::default());
        let mut fed = Client::connect_binary(gateway_addr())
            .map_err(|e| TestCaseError::fail(format!("gateway connect: {e}")))?;
        let mut now = 0.0f64;
        for (i, op) in ops.iter().enumerate() {
            now += op.2;
            let req = request_for(op, case, now);
            let (want, _) = mono.handle(&req);
            let got = fed.request(&req)
                .map_err(|e| TestCaseError::fail(format!("step {i} ({}): {e}", req.kind())))?;
            prop_assert!(
                !matches!(want, Response::Error(_)),
                "monolith errored at step {}: {:?}", i, want
            );
            prop_assert_eq!(
                normalized(want), normalized(got),
                "step {} ({}) diverged between federation and monolith", i, req.kind()
            );
        }
    }
}
