//! The federation's crash story, end to end: kill 1 of 3 backends under
//! a live gateway and demand (a) zero failed idempotent requests — the
//! ring successor takes over, first via mid-flight failover, then via
//! health-checked routing; (b) reports filed during the outage reach the
//! journal and the surviving backends; (c) a backend restarted *empty*
//! on the same port is detected by the health checker (its `load_report`
//! counter trails the gateway's replication cursor), caught up by
//! journal replay, and converges bit-identically to a peer that never
//! died.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use contention_model::dataset::DataSet;
use contention_model::predict::ParagonTask;
use contention_model::units::secs;
use predictd::proto::{LoadReport, Predict, Rank, Request, Response};
use predictd::{Client, EventedServer, ServerConfig, Service, ServiceConfig};
use predictgw::{Gateway, GatewayConfig, GatewayServer};

fn task() -> ParagonTask {
    ParagonTask {
        dcomp_sun: secs(30.0),
        t_paragon: secs(6.0),
        to_backend: vec![DataSet::burst(10, 2000)],
        from_backend: vec![DataSet::single(1000)],
    }
}

fn report(machine: &str, at: f64) -> Request {
    Request::LoadReport(LoadReport { machine: machine.to_string(), at, load: 2.0, comm_frac: 0.4 })
}

fn predict(machine: &str, now: f64) -> Request {
    Request::Predict(Predict { machine: machine.to_string(), now, task: task(), j_words: 500 })
}

fn rank(machine: &str, now: f64) -> Request {
    Request::Rank(Rank {
        machine: machine.to_string(),
        now,
        workflow: hetsched::example::workflow(),
        front_end: 0,
        j_words: 500,
        limit: 2,
    })
}

/// Boots one evented predictd backend — on `127.0.0.1:0` for a fresh
/// port, or on a previous address to model a restart. The service is
/// fresh (empty) either way; leaked, like every fixture here.
fn spawn_backend(addr: SocketAddr) -> (SocketAddr, thread::JoinHandle<()>) {
    let service: &'static Service =
        Box::leak(Box::new(Service::with_default_predictor(ServiceConfig::default())));
    let cfg: &'static ServerConfig = Box::leak(Box::new(ServerConfig::default()));
    let server = EventedServer::bind(addr, 1).expect("bind backend");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run(service, cfg).expect("backend run"));
    (addr, handle)
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(20));
    }
}

fn stats_of(addr: &str) -> predictd::proto::StatsReply {
    let mut c = Client::connect_binary(addr).expect("stats connect");
    match c.request(&Request::Stats).expect("stats") {
        Response::Stats(s) => s,
        other => panic!("want stats, got {other:?}"),
    }
}

#[test]
fn killed_backend_fails_over_and_replays_to_convergence() {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..3 {
        let (addr, handle) = spawn_backend("127.0.0.1:0".parse().expect("loopback"));
        addrs.push(addr.to_string());
        handles.push(Some(handle));
    }

    let mut journal = std::env::temp_dir();
    journal.push(format!("predictgw-failover-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    let gateway: &'static Gateway = Box::leak(Box::new(
        Gateway::new(GatewayConfig {
            backends: addrs.clone(),
            journal_path: Some(journal.clone()),
            health_interval: Duration::from_millis(50),
            health_threshold: 2,
            connect_timeout: Duration::from_millis(500),
            io_timeout: Some(Duration::from_secs(2)),
            ..GatewayConfig::default()
        })
        .expect("gateway"),
    ));
    let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let cfg: &'static ServerConfig = Box::leak(Box::new(ServerConfig::default()));
    let server =
        GatewayServer::bind("127.0.0.1:0".parse().expect("loopback"), 1).expect("bind gateway");
    let gw_addr = server.local_addr();
    let checker = thread::spawn(|| gateway.run_health_checker(stop));
    let gw_handle = thread::spawn(move || server.run(gateway, cfg, stop).expect("gateway run"));

    let mut client = Client::connect_binary(gw_addr).expect("gateway connect");
    let machines: Vec<String> = (0..6).map(|i| format!("fo-m{i}")).collect();
    let mut at = 0.0f64;
    let mut reports_filed = 0u64;
    let file = |client: &mut Client, machine: &str, at: f64| match client
        .request(&report(machine, at))
        .expect("report")
    {
        Response::Ack(a) => assert!(a.accepted, "fresh report for {machine} must be accepted"),
        other => panic!("want ack, got {other:?}"),
    };

    // Phase 1: warm the whole fleet through the gateway.
    for _ in 0..4 {
        for m in &machines {
            at += 0.25;
            file(&mut client, m, at);
            reports_filed += 1;
        }
    }

    // Phase 2: kill the ring owner of machines[0] without telling the
    // gateway — the next requests walk into a dead socket.
    let victim = gateway.ring().owner(&machines[0]);
    let peer = (victim + 1) % addrs.len();
    {
        let mut direct = Client::connect_binary(addrs[victim].as_str()).expect("victim connect");
        let resp = direct.request(&Request::Shutdown).expect("shutdown");
        assert!(matches!(resp, Response::Ok), "{resp:?}");
    }
    handles[victim].take().expect("victim handle").join().expect("victim exits");

    // Zero failed idempotent requests: every machine still answers —
    // the victim's machines via mid-flight failover to the successor.
    for m in &machines {
        let resp = client.request(&predict(m, at + 0.1)).expect("predict during outage");
        assert!(
            matches!(resp, Response::Prediction(_)),
            "predict for {m} must survive the outage: {resp:?}"
        );
        let resp = client.request(&rank(m, at + 0.1)).expect("rank during outage");
        assert!(
            matches!(resp, Response::Ranked(_)),
            "rank for {m} must survive the outage: {resp:?}"
        );
    }

    // Reports during the window before the checker reacts still ack
    // (a surviving backend answers) and still reach the journal; the
    // victim's replication cursor simply stops advancing.
    for m in machines.iter().take(3) {
        at += 0.25;
        file(&mut client, m, at);
        reports_filed += 1;
    }

    wait_until("victim marked down", Duration::from_secs(10), || {
        !gateway.backend(victim).expect("victim state").is_healthy()
    });

    // Phase 3: routed-around outage. More reports (journal keeps
    // growing past the victim's cursor) and more queries (now misses,
    // not failovers — the owner is known-down).
    for m in &machines {
        at += 0.25;
        file(&mut client, m, at);
        reports_filed += 1;
        let resp = client.request(&predict(m, at)).expect("predict while down");
        assert!(matches!(resp, Response::Prediction(_)), "{resp:?}");
    }

    // Phase 4: restart the victim *empty* on the same port. The health
    // checker must spot the rollback (its load_report counter trails
    // the cursor), replay the journal, and only then mark it up.
    let (restarted, handle) = spawn_backend(addrs[victim].parse().expect("victim addr"));
    assert_eq!(restarted.to_string(), addrs[victim], "restart must reuse the port");
    handles[victim] = Some(handle);
    wait_until("victim replayed and marked up", Duration::from_secs(10), || {
        gateway.backend(victim).expect("victim state").is_healthy()
    });

    // Phase 5: convergence. The restarted backend must hold exactly the
    // journal's report stream — the same count the never-dead peer
    // absorbed via broadcast — and answer every machine identically.
    let sa = stats_of(&addrs[victim]);
    let sb = stats_of(&addrs[peer]);
    assert_eq!(
        sa.requests.load_report, reports_filed,
        "replay must restore every journaled report"
    );
    assert_eq!(sa.requests.load_report, sb.requests.load_report);
    assert_eq!(sa.machines, sb.machines, "same machine population after replay");

    let mut a = Client::connect_binary(addrs[victim].as_str()).expect("victim reconnect");
    let mut b = Client::connect_binary(addrs[peer].as_str()).expect("peer connect");
    for m in &machines {
        let qa = a.request(&predict(m, at + 0.5)).expect("victim predict");
        let qb = b.request(&predict(m, at + 0.5)).expect("peer predict");
        let (Response::Prediction(mut pa), Response::Prediction(mut pb)) = (qa, qb) else {
            panic!("both backends must answer predictions for {m}")
        };
        // cache_hit is replica metadata (caches warm differently);
        // everything else must be bit-identical.
        pa.cache_hit = false;
        pb.cache_hit = false;
        assert_eq!(pa, pb, "machine {m} diverged between restarted backend and peer");
    }

    let gs = gateway.gw_stats();
    assert!(gs.failovers >= 1, "the outage window must have recorded a failover: {gs:?}");
    assert!(
        gs.backends[victim].replayed >= reports_filed,
        "replay counter must cover the journal: {gs:?}"
    );
    assert!(gs.journal_frames > reports_filed, "journal holds meta + every report: {gs:?}");

    // Teardown: gateway first (its Shutdown stops only the gateway),
    // then the checker, then the backends directly.
    let resp = client.request(&Request::Shutdown).expect("gateway shutdown");
    assert!(matches!(resp, Response::Ok), "{resp:?}");
    gw_handle.join().expect("gateway exits");
    stop.store(true, Ordering::Release);
    checker.join().expect("checker exits");
    for (i, h) in handles.iter_mut().enumerate() {
        let mut direct = Client::connect_binary(addrs[i].as_str()).expect("teardown connect");
        direct.request(&Request::Shutdown).expect("backend shutdown");
        h.take().expect("handle").join().expect("backend exits");
    }
    let _ = std::fs::remove_file(&journal);
}
