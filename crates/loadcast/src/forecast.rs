//! The forecaster family: one-step-ahead predictors of the next load
//! sample.
//!
//! Modeled on the Network Weather Service's predictor bank: several
//! cheap, incremental forecasters run side by side and a selector
//! (see [`crate::selector`]) forwards whichever has the lowest running
//! error. Every forecaster here is *exact on constant input*: feeding the
//! same value repeatedly makes `predict` return that value to the bit —
//! the property that lets forecast-fed model predictions match direct
//! `decide()` calls bit-for-bit when the load is steady.

use contention_model::units::f64_from_usize;
use std::collections::VecDeque;

/// A one-step-ahead load forecaster, fed samples oldest → newest.
pub trait Forecaster {
    /// Ingests the next observed load value (already validated: finite,
    /// non-negative).
    fn observe(&mut self, load: f64);

    /// The current prediction of the *next* load value; `None` until at
    /// least one observation has arrived.
    fn predict(&self) -> Option<f64>;

    /// Short display name (`"last"`, `"mean16"`, `"ewma0.30"`, …).
    fn name(&self) -> &str;

    /// An independent copy of this forecaster with identical state, as
    /// a fresh boxed trait object. Lets a whole predictor bank be
    /// duplicated (e.g. into a per-core replica) while staying object
    /// safe; every implementation is `Clone`, so this is `Box::new
    /// (self.clone())` throughout.
    fn clone_box(&self) -> Box<dyn Forecaster + Send + Sync>;
}

/// Predicts the most recent observation (the NWS "last value" method).
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// A fresh last-value forecaster.
    pub fn new() -> Self {
        LastValue::default()
    }
}

impl Forecaster for LastValue {
    fn observe(&mut self, load: f64) {
        self.last = Some(load);
    }

    fn predict(&self) -> Option<f64> {
        self.last
    }

    fn name(&self) -> &str {
        "last"
    }

    fn clone_box(&self) -> Box<dyn Forecaster + Send + Sync> {
        Box::new(self.clone())
    }
}

/// Predicts the arithmetic mean of the last `k` observations.
#[derive(Debug, Clone)]
pub struct WindowedMean {
    k: usize,
    buf: VecDeque<f64>,
    name: String,
}

impl WindowedMean {
    /// A mean over the trailing `k ≥ 1` observations.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "mean window must hold at least 1 sample");
        WindowedMean { k, buf: VecDeque::with_capacity(k), name: format!("mean{k}") }
    }
}

impl Forecaster for WindowedMean {
    fn observe(&mut self, load: f64) {
        if self.buf.len() == self.k {
            self.buf.pop_front();
        }
        self.buf.push_back(load);
    }

    fn predict(&self) -> Option<f64> {
        let first = *self.buf.front()?;
        // Equal-window fast path: summing n copies of v and dividing by n
        // rounds for non-dyadic v (sixteen 0.1s ≠ 1.6 exactly), so the
        // constant-input fixed-point guarantee is enforced structurally.
        // modelcheck-allow: float-env — the bit-exact forecaster
        // guarantee is defined in terms of representation equality.
        if self.buf.iter().all(|x| x.to_bits() == first.to_bits()) {
            return Some(first);
        }
        // Re-summed each call (k is small) rather than kept as a running
        // add/subtract accumulator, which would drift.
        let sum: f64 = self.buf.iter().sum();
        Some(sum / f64_from_usize(self.buf.len()))
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_box(&self) -> Box<dyn Forecaster + Send + Sync> {
        Box::new(self.clone())
    }
}

/// Predicts the median of the last `k` observations (robust to spikes).
#[derive(Debug, Clone)]
pub struct WindowedMedian {
    k: usize,
    buf: VecDeque<f64>,
    name: String,
}

impl WindowedMedian {
    /// A median over the trailing `k ≥ 1` observations.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "median window must hold at least 1 sample");
        WindowedMedian { k, buf: VecDeque::with_capacity(k), name: format!("median{k}") }
    }
}

impl Forecaster for WindowedMedian {
    fn observe(&mut self, load: f64) {
        if self.buf.len() == self.k {
            self.buf.pop_front();
        }
        self.buf.push_back(load);
    }

    fn predict(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.buf.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mid = sorted[n / 2];
        if n % 2 == 1 {
            Some(mid)
        } else {
            // Even count: mean of the two middles. `(a + a) / 2 == a`
            // exactly, so constancy is preserved.
            Some((sorted[n / 2 - 1] + mid) / 2.0)
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_box(&self) -> Box<dyn Forecaster + Send + Sync> {
        Box::new(self.clone())
    }
}

/// Exponentially weighted moving average, `s ← s + g·(v − s)`, with the
/// state initialized to the first observation — which makes constant
/// input a fixed point to the bit (`v − s` is exactly zero).
#[derive(Debug, Clone)]
pub struct Ewma {
    gain: f64,
    state: Option<f64>,
    name: String,
}

impl Ewma {
    /// An EWMA with gain `g ∈ (0, 1]` (1 degenerates to last-value).
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "EWMA gain must be in (0, 1]");
        Ewma { gain, state: None, name: format!("ewma{gain:.2}") }
    }

    /// The smoothing gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Forecaster for Ewma {
    fn observe(&mut self, load: f64) {
        self.state = Some(match self.state {
            None => load,
            Some(s) => s + self.gain * (load - s),
        });
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_box(&self) -> Box<dyn Forecaster + Send + Sync> {
        Box::new(self.clone())
    }
}

/// The default predictor bank: last-value, short and long means, a
/// spike-robust median, and EWMAs from sluggish to reactive — the spread
/// the NWS found covers workstation load well.
pub fn default_family() -> Vec<Box<dyn Forecaster + Send + Sync>> {
    vec![
        Box::new(LastValue::new()),
        Box::new(WindowedMean::new(4)),
        Box::new(WindowedMean::new(16)),
        Box::new(WindowedMedian::new(5)),
        Box::new(Ewma::new(0.1)),
        Box::new(Ewma::new(0.3)),
        Box::new(Ewma::new(0.9)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &mut dyn Forecaster, vals: &[f64]) {
        for &v in vals {
            f.observe(v);
        }
    }

    #[test]
    fn empty_forecasters_predict_nothing() {
        for f in default_family() {
            assert_eq!(f.predict(), None, "{}", f.name());
        }
    }

    #[test]
    fn constant_input_is_a_bit_exact_fixed_point() {
        for v in [0.0, 3.0, 2.5, 7.0, 0.1] {
            for mut f in default_family() {
                feed(f.as_mut(), &[v; 9]);
                assert_eq!(f.predict(), Some(v), "{} at {v}", f.name());
            }
        }
    }

    #[test]
    fn last_value_tracks_immediately() {
        let mut f = LastValue::new();
        feed(&mut f, &[1.0, 5.0, 2.0]);
        assert_eq!(f.predict(), Some(2.0));
    }

    #[test]
    fn windowed_mean_averages_the_tail() {
        let mut f = WindowedMean::new(3);
        feed(&mut f, &[10.0, 1.0, 2.0, 3.0]);
        assert_eq!(f.predict(), Some(2.0));
        assert_eq!(f.name(), "mean3");
    }

    #[test]
    fn windowed_median_resists_spikes() {
        let mut f = WindowedMedian::new(5);
        feed(&mut f, &[2.0, 2.0, 100.0, 2.0, 2.0]);
        assert_eq!(f.predict(), Some(2.0));
        let mut even = WindowedMedian::new(4);
        feed(&mut even, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.predict(), Some(2.5));
    }

    #[test]
    fn ewma_moves_toward_new_level() {
        let mut f = Ewma::new(0.5);
        feed(&mut f, &[0.0, 4.0]);
        assert_eq!(f.predict(), Some(2.0));
        feed(&mut f, &[4.0]);
        assert_eq!(f.predict(), Some(3.0));
        assert_eq!(f.name(), "ewma0.50");
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn ewma_rejects_zero_gain() {
        Ewma::new(0.0);
    }
}
