//! # loadcast — online load monitoring and forecasting
//!
//! The paper's premise is that a scheduler consults the contention model
//! *at allocation time* using the machines' **current** load. This crate
//! supplies the missing "current": timestamped load samples ingested into
//! bounded [`window`]s, a family of one-step-ahead [`forecast`]ers
//! (last-value, windowed mean/median, EWMA at several gains) with
//! NWS-style dynamic [`selector`] choice — track every forecaster's
//! running MAE, forward the current winner — and a [`monitor`] that turns
//! the winning forecast into the [`WorkloadMix`] the core model consumes,
//! with an explicit staleness policy: no samples within a configurable
//! horizon degrades the answer to the dedicated-machine prediction and
//! flags it stale.
//!
//! The pipeline is deliberately exact where the model is exact: a
//! constant load trace of `p` contenders makes every forecaster predict
//! `p` to the bit (see `tests/forecast_properties.rs`), so forecast-fed
//! predictions are bit-identical to direct `decide()` calls under the
//! true mix.
//!
//! [`WorkloadMix`]: contention_model::mix::WorkloadMix
//!
//! modelcheck: no-panic, lossy-cast, missing-docs, float-env

#![warn(missing_docs)]

pub mod forecast;
pub mod monitor;
pub mod selector;
pub mod window;

pub use forecast::{default_family, Ewma, Forecaster, LastValue, WindowedMean, WindowedMedian};
pub use monitor::{LoadForecast, LoadMonitor, MixForecast, MonitorConfig};
pub use selector::{ForecasterScore, SelectivePredictor};
pub use window::{LoadSample, SlidingWindow};
