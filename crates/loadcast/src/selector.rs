//! NWS-style dynamic predictor selection.
//!
//! The Network Weather Service's insight: no single forecaster wins on
//! all load traces, but tracking every forecaster's running error *on
//! the trace being forecast* and forwarding the current winner performs
//! close to the best of the bank in hindsight. [`SelectivePredictor`]
//! implements exactly that: before each new sample updates the bank,
//! every forecaster's outstanding prediction is scored against it
//! (mean absolute error), and `predict` forwards the forecaster with the
//! lowest MAE so far.

use crate::forecast::{default_family, Forecaster};
use contention_model::units::f64_from_u64;

struct Entry {
    forecaster: Box<dyn Forecaster + Send + Sync>,
    abs_err_sum: f64,
    scored: u64,
}

impl Entry {
    fn mae(&self) -> Option<f64> {
        if self.scored == 0 {
            None
        } else {
            Some(self.abs_err_sum / f64_from_u64(self.scored))
        }
    }
}

/// A forecaster's running score, for diagnostics and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecasterScore {
    /// The forecaster's display name.
    pub name: String,
    /// Mean absolute one-step-ahead error; `None` until it has been
    /// scored against at least one sample.
    pub mae: Option<f64>,
    /// How many samples it has been scored against.
    pub scored: u64,
}

/// Runs a bank of forecasters side by side, scores each against every
/// incoming sample, and forwards the current lowest-MAE winner.
pub struct SelectivePredictor {
    entries: Vec<Entry>,
}

impl SelectivePredictor {
    /// A selector over an explicit bank (`forecasters` non-empty).
    pub fn new(forecasters: Vec<Box<dyn Forecaster + Send + Sync>>) -> Self {
        assert!(!forecasters.is_empty(), "selector needs at least one forecaster");
        SelectivePredictor {
            entries: forecasters
                .into_iter()
                .map(|forecaster| Entry { forecaster, abs_err_sum: 0.0, scored: 0 })
                .collect(),
        }
    }

    /// A selector over the default NWS-style bank
    /// ([`default_family`]).
    pub fn nws_default() -> Self {
        SelectivePredictor::new(default_family())
    }

    /// Scores every forecaster's outstanding prediction against `load`,
    /// then feeds `load` to the whole bank.
    pub fn observe(&mut self, load: f64) {
        for e in &mut self.entries {
            if let Some(p) = e.forecaster.predict() {
                e.abs_err_sum += (p - load).abs();
                e.scored += 1;
            }
            e.forecaster.observe(load);
        }
    }

    /// The current winner's prediction and name: lowest running MAE,
    /// earliest entry on ties. Before any forecaster has been scored
    /// (fewer than two samples) the first entry with a prediction wins.
    /// `None` until at least one sample has been observed.
    pub fn predict(&self) -> Option<(f64, &str)> {
        let mut best: Option<(&Entry, f64)> = None;
        for e in &self.entries {
            if let (Some(mae), Some(_)) = (e.mae(), e.forecaster.predict()) {
                let better = match best {
                    None => true,
                    Some((_, best_mae)) => mae < best_mae,
                };
                if better {
                    best = Some((e, mae));
                }
            }
        }
        let winner = match best {
            Some((e, _)) => e,
            // Not scored yet: fall back to the first forecaster that has
            // anything to say.
            None => self.entries.iter().find(|e| e.forecaster.predict().is_some())?,
        };
        winner.forecaster.predict().map(|p| (p, winner.forecaster.name()))
    }

    /// Every forecaster's running score, in bank order.
    pub fn scores(&self) -> Vec<ForecasterScore> {
        self.entries
            .iter()
            .map(|e| ForecasterScore {
                name: e.forecaster.name().to_string(),
                mae: e.mae(),
                scored: e.scored,
            })
            .collect()
    }
}

impl Clone for SelectivePredictor {
    fn clone(&self) -> Self {
        SelectivePredictor {
            entries: self
                .entries
                .iter()
                .map(|e| Entry {
                    forecaster: e.forecaster.clone_box(),
                    abs_err_sum: e.abs_err_sum,
                    scored: e.scored,
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for SelectivePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectivePredictor").field("scores", &self.scores()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::{Ewma, LastValue, WindowedMean};

    #[test]
    fn empty_selector_predicts_nothing() {
        let s = SelectivePredictor::nws_default();
        assert_eq!(s.predict(), None);
    }

    #[test]
    fn constant_trace_predicts_constant_exactly() {
        let mut s = SelectivePredictor::nws_default();
        for _ in 0..10 {
            s.observe(3.0);
        }
        let (p, _) = s.predict().expect("has prediction");
        assert_eq!(p, 3.0);
    }

    #[test]
    fn selector_tracks_the_better_forecaster() {
        // Alternating 0/4 load: last-value is always wrong by 4, the
        // long mean hovers near 2 (error ~2) — the mean must win.
        let mut s = SelectivePredictor::new(vec![
            Box::new(LastValue::new()),
            Box::new(WindowedMean::new(16)),
        ]);
        for i in 0..32 {
            s.observe(if i % 2 == 0 { 0.0 } else { 4.0 });
        }
        let (_, name) = s.predict().expect("has prediction");
        assert_eq!(name, "mean16");
        let scores = s.scores();
        assert!(scores[1].mae < scores[0].mae, "{scores:?}");
        assert_eq!(scores[0].scored, 31, "first sample scores nobody");
    }

    #[test]
    fn scoring_happens_before_the_bank_updates() {
        // One sample in: nothing scored yet; second sample scores the
        // prediction made from the first.
        let mut s = SelectivePredictor::new(vec![Box::new(Ewma::new(0.5))]);
        s.observe(2.0);
        assert_eq!(s.scores()[0].scored, 0);
        s.observe(6.0);
        let sc = &s.scores()[0];
        assert_eq!(sc.scored, 1);
        assert_eq!(sc.mae, Some(4.0), "|2 - 6|");
    }
}
