//! Bounded sliding windows of timestamped load samples.
//!
//! A [`SlidingWindow`] is the ingestion buffer of one machine's load
//! monitor: a FIFO of [`LoadSample`]s in non-decreasing time order,
//! capped at a fixed capacity so a long-running daemon's memory stays
//! bounded no matter how many reports arrive.

use contention_model::units::Seconds;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One observation of a machine's load: how many contending applications
/// (possibly a fractional time-average) were runnable at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSample {
    /// When the sample was taken, on the reporter's clock.
    pub at: Seconds,
    /// Observed contender load. Finite and non-negative; fractional
    /// values represent time-averaged occupancy over the sample period.
    pub load: f64,
}

impl LoadSample {
    /// A sample, unvalidated (validation happens at ingestion).
    pub fn new(at: Seconds, load: f64) -> Self {
        LoadSample { at, load }
    }

    /// True when the load value is usable: finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.load.is_finite() && self.load >= 0.0
    }
}

/// Bounded FIFO of samples in non-decreasing time order. Pushing beyond
/// capacity evicts the oldest sample.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    cap: usize,
    samples: VecDeque<LoadSample>,
}

impl SlidingWindow {
    /// An empty window holding at most `cap` samples (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window capacity must be at least 1");
        SlidingWindow { cap, samples: VecDeque::with_capacity(cap) }
    }

    /// Ingests a sample. Rejects (returns `false`, window unchanged)
    /// samples that are invalid or older than the newest already held —
    /// reports must arrive in time order per machine.
    pub fn push(&mut self, s: LoadSample) -> bool {
        if !s.is_valid() {
            return false;
        }
        if let Some(last) = self.samples.back() {
            if s.at < last.at {
                return false;
            }
        }
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(s);
        true
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been ingested (or all were rejected).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum number of samples held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<&LoadSample> {
        self.samples.back()
    }

    /// Samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &LoadSample> {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_model::units::secs;

    #[test]
    fn push_keeps_time_order_and_capacity() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for t in 0..5 {
            assert!(w.push(LoadSample::new(secs(t as f64), t as f64)));
        }
        assert_eq!(w.len(), 3);
        let loads: Vec<f64> = w.iter().map(|s| s.load).collect();
        assert_eq!(loads, vec![2.0, 3.0, 4.0]);
        assert_eq!(w.latest().map(|s| s.load), Some(4.0));
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    fn out_of_order_and_invalid_samples_rejected() {
        let mut w = SlidingWindow::new(4);
        assert!(w.push(LoadSample::new(secs(5.0), 1.0)));
        assert!(!w.push(LoadSample::new(secs(4.0), 1.0)), "older than newest");
        assert!(w.push(LoadSample::new(secs(5.0), 2.0)), "equal timestamps are fine");
        assert!(!w.push(LoadSample::new(secs(6.0), f64::NAN)));
        assert!(!w.push(LoadSample::new(secs(6.0), -1.0)));
        assert!(!w.push(LoadSample::new(secs(6.0), f64::INFINITY)));
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        SlidingWindow::new(0);
    }
}
