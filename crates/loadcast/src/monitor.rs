//! Per-machine load monitoring: samples in, workload mixes out.
//!
//! [`LoadMonitor`] glues the pipeline together for one machine: reports
//! land in a [`SlidingWindow`] and feed a [`SelectivePredictor`]; a
//! query converts the winning forecast into the contender count and
//! [`WorkloadMix`] the contention model consumes.
//!
//! **Staleness policy.** A forecast is only as good as its samples. If
//! the newest sample is older than the configured horizon (or no samples
//! ever arrived), the monitor refuses to extrapolate: it degrades to the
//! dedicated-machine answer (`p = 0`, empty mix) and flags the result
//! `stale`, so callers can tell "the machine is idle" from "nobody has
//! told me anything lately".

use crate::selector::SelectivePredictor;
use crate::window::{LoadSample, SlidingWindow};
use contention_model::mix::WorkloadMix;
use contention_model::units::{secs, Prob, Seconds};

/// Hard cap on the contender count derived from a forecast, bounding the
/// cost of mix construction no matter what a reporter claims.
pub const MAX_CONTENDERS: usize = 1024;

/// Tuning knobs of a [`LoadMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Sliding-window capacity (samples kept per machine).
    pub window: usize,
    /// Staleness horizon: a forecast asked for more than this long after
    /// the newest sample degrades to the dedicated answer.
    pub horizon: Seconds,
    /// Communication fraction assumed for contenders before any report
    /// carries one (pure CPU-bound contenders by default, matching the
    /// paper's load generators).
    pub default_frac: Prob,
    /// EWMA gain for tracking the reported communication fraction.
    pub frac_gain: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { window: 64, horizon: secs(10.0), default_frac: Prob::ZERO, frac_gain: 0.3 }
    }
}

/// One answer from the monitor: the forecast load and its pedigree.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadForecast {
    /// Forecast contender load (≥ 0; exactly 0 when stale).
    pub load: f64,
    /// The load rounded to a whole contender count, capped at
    /// [`MAX_CONTENDERS`].
    pub p: usize,
    /// True when the staleness policy fired: the answer is the
    /// dedicated-machine fallback, not a forecast.
    pub stale: bool,
    /// Time since the newest sample, `None` when no sample ever arrived.
    pub age: Option<Seconds>,
    /// Name of the forecaster that produced the value (`"dedicated"`
    /// when stale).
    pub forecaster: String,
}

/// A [`LoadForecast`] materialized as the model's workload-mix input.
#[derive(Debug, Clone)]
pub struct MixForecast {
    /// The forecast mix: `p` contenders at the tracked communication
    /// fraction (empty when stale).
    pub mix: WorkloadMix,
    /// The per-contender communication fraction used to build the mix.
    pub frac: Prob,
    /// The underlying load forecast.
    pub forecast: LoadForecast,
}

/// Online load monitor for one machine. `Clone` duplicates the whole
/// monitor — window, forecaster bank with running scores, tracked
/// fraction — so a copy fed the same subsequent reports stays
/// bit-identical to the original (every forecaster is deterministic).
#[derive(Clone)]
pub struct LoadMonitor {
    cfg: MonitorConfig,
    window: SlidingWindow,
    selector: SelectivePredictor,
    frac: Prob,
}

impl LoadMonitor {
    /// A monitor with the given configuration and the default NWS-style
    /// forecaster bank.
    pub fn new(cfg: MonitorConfig) -> Self {
        LoadMonitor {
            window: SlidingWindow::new(cfg.window),
            selector: SelectivePredictor::nws_default(),
            frac: cfg.default_frac,
            cfg,
        }
    }

    /// Ingests one load report. `comm_frac`, when present, updates the
    /// tracked per-contender communication fraction by EWMA. Returns
    /// `false` (state unchanged) for invalid or time-regressing samples.
    pub fn report(&mut self, at: Seconds, load: f64, comm_frac: Option<Prob>) -> bool {
        if !self.window.push(LoadSample::new(at, load)) {
            return false;
        }
        self.selector.observe(load);
        if let Some(cf) = comm_frac {
            let g = self.cfg.frac_gain;
            let blended = self.frac.get() + g * (cf.get() - self.frac.get());
            self.frac = Prob::new(blended.clamp(0.0, 1.0));
        }
        true
    }

    /// The forecast load as of `now`, subject to the staleness policy.
    pub fn forecast(&self, now: Seconds) -> LoadForecast {
        let age = self.window.latest().map(|s| secs((now.get() - s.at.get()).max(0.0)));
        let fresh = age.is_some_and(|a| a <= self.cfg.horizon);
        let prediction = if fresh { self.selector.predict() } else { None };
        match prediction {
            Some((raw, name)) => {
                let load = raw.max(0.0);
                LoadForecast {
                    load,
                    p: contenders(load),
                    stale: false,
                    age,
                    forecaster: name.to_string(),
                }
            }
            None => LoadForecast {
                load: 0.0,
                p: 0,
                stale: true,
                age,
                forecaster: "dedicated".to_string(),
            },
        }
    }

    /// The forecast materialized as a [`WorkloadMix`]: `p` contenders,
    /// each communicating the tracked fraction of the time. Stale
    /// forecasts yield the empty (dedicated) mix.
    pub fn mix_forecast(&self, now: Seconds) -> MixForecast {
        let forecast = self.forecast(now);
        let fracs = vec![self.frac; forecast.p];
        MixForecast { mix: WorkloadMix::from_probs(&fracs), frac: self.frac, forecast }
    }

    /// The tracked per-contender communication fraction.
    pub fn frac(&self) -> Prob {
        self.frac
    }

    /// The ingestion window (for diagnostics and stats).
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Per-forecaster running scores (for diagnostics and stats).
    pub fn scores(&self) -> Vec<crate::selector::ForecasterScore> {
        self.selector.scores()
    }

    /// The staleness horizon in force.
    pub fn horizon(&self) -> Seconds {
        self.cfg.horizon
    }
}

impl std::fmt::Debug for LoadMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadMonitor")
            .field("cfg", &self.cfg)
            .field("samples", &self.window.len())
            .field("frac", &self.frac)
            .finish()
    }
}

/// Rounds a forecast load to a whole contender count, capped at
/// [`MAX_CONTENDERS`]. Exact for integer-valued loads.
pub fn contenders(load: f64) -> usize {
    let bounded = load.max(0.0).round().min(1024.0);
    debug_assert!((0.0..=1024.0).contains(&bounded));
    bounded as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_model::units::prob;

    #[test]
    fn fresh_constant_trace_forecasts_the_constant() {
        let mut m = LoadMonitor::new(MonitorConfig::default());
        for t in 0..5 {
            assert!(m.report(secs(t as f64), 3.0, None));
        }
        let f = m.forecast(secs(4.5));
        assert!(!f.stale);
        assert_eq!(f.load, 3.0);
        assert_eq!(f.p, 3);
        assert_eq!(f.age, Some(secs(0.5)));
    }

    #[test]
    fn no_samples_means_stale_dedicated() {
        let m = LoadMonitor::new(MonitorConfig::default());
        let f = m.forecast(secs(100.0));
        assert!(f.stale);
        assert_eq!(f.p, 0);
        assert_eq!(f.age, None);
        assert_eq!(f.forecaster, "dedicated");
        let mf = m.mix_forecast(secs(100.0));
        assert_eq!(mf.mix.p(), 0);
    }

    #[test]
    fn old_samples_trip_the_horizon() {
        let mut m = LoadMonitor::new(MonitorConfig { horizon: secs(5.0), ..Default::default() });
        m.report(secs(0.0), 4.0, None);
        m.report(secs(1.0), 4.0, None);
        let fresh = m.forecast(secs(6.0));
        assert!(!fresh.stale, "age 5 == horizon is still fresh");
        assert_eq!(fresh.p, 4);
        let stale = m.forecast(secs(6.1));
        assert!(stale.stale);
        assert_eq!(stale.p, 0);
        assert_eq!(stale.age, Some(secs(5.1)));
    }

    #[test]
    fn mix_uses_tracked_comm_fraction() {
        let mut m = LoadMonitor::new(MonitorConfig {
            default_frac: prob(0.5),
            frac_gain: 1.0,
            ..Default::default()
        });
        m.report(secs(0.0), 2.0, Some(prob(0.25)));
        m.report(secs(1.0), 2.0, Some(prob(0.25)));
        let mf = m.mix_forecast(secs(1.0));
        assert_eq!(mf.frac, prob(0.25), "gain 1.0 jumps straight to the report");
        assert_eq!(mf.mix.p(), 2);
        assert_eq!(mf.mix.fracs(), &[prob(0.25), prob(0.25)]);
    }

    #[test]
    fn invalid_reports_are_rejected_without_side_effects() {
        let mut m = LoadMonitor::new(MonitorConfig::default());
        assert!(m.report(secs(5.0), 1.0, None));
        assert!(!m.report(secs(4.0), 9.0, Some(prob(0.9))), "time regression");
        assert!(!m.report(secs(6.0), f64::NAN, Some(prob(0.9))));
        assert_eq!(m.frac(), Prob::ZERO, "rejected reports must not move the frac");
        assert_eq!(m.window().len(), 1);
        assert_eq!(m.forecast(secs(5.0)).load, 1.0);
    }

    #[test]
    fn contender_rounding_clamps() {
        assert_eq!(contenders(0.0), 0);
        assert_eq!(contenders(2.4), 2);
        assert_eq!(contenders(2.5), 3);
        assert_eq!(contenders(1e18), MAX_CONTENDERS);
    }
}
