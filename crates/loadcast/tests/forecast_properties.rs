//! The constant-trace equivalence property (ISSUE 3 acceptance):
//! a constant load trace of `p` contenders makes **every** forecaster in
//! the bank — and the NWS selector over them — converge to exactly `p`,
//! and the mix built from that forecast yields placement decisions
//! **bit-identical** to a direct `decide()` call with the true mix.

use contention_model::comm::{LinearCommModel, PiecewiseCommModel};
use contention_model::dataset::DataSet;
use contention_model::delay::{CommDelayTable, CompDelayTable};
use contention_model::mix::WorkloadMix;
use contention_model::predict::{ParagonPredictor, ParagonTask};
use contention_model::units::{prob, secs, BytesPerSec};
use loadcast::{default_family, LoadMonitor, MonitorConfig, SelectivePredictor};
use proptest::prelude::*;

fn linear(alpha: f64, beta_wps: f64) -> LinearCommModel {
    LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_wps))
}

/// A fixed calibrated predictor (values from a real calibration run).
fn predictor() -> ParagonPredictor {
    ParagonPredictor {
        comm_to: PiecewiseCommModel::new(1024, linear(1.6e-3, 79_000.0), linear(5.6e-3, 104_000.0)),
        comm_from: PiecewiseCommModel::new(
            1024,
            linear(1.5e-3, 149_000.0),
            linear(2.0e-3, 83_000.0),
        ),
        comm_delays: CommDelayTable::new(
            vec![0.27, 0.61, 1.02, 1.40],
            vec![0.19, 0.49, 0.81, 1.10],
        ),
        comp_delays: CompDelayTable::new(
            vec![1, 500, 1000],
            vec![
                vec![0.22, 0.37, 0.37, 0.37],
                vec![0.66, 1.15, 1.59, 1.90],
                vec![1.68, 3.59, 5.52, 7.00],
            ],
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every forecaster in the default bank is exact on constant input.
    fn every_forecaster_converges_to_the_constant(
        p in 0usize..=8,
        len in 2usize..40,
    ) {
        let load = p as f64;
        for mut f in default_family() {
            for _ in 0..len {
                f.observe(load);
            }
            prop_assert_eq!(f.predict(), Some(load), "{}", f.name());
        }
        let mut sel = SelectivePredictor::nws_default();
        for _ in 0..len {
            sel.observe(load);
        }
        let (got, _) = sel.predict().expect("selector has a prediction");
        prop_assert_eq!(got, load);
    }

    /// Forecast-fed decisions are bit-identical to direct `decide()`
    /// under the true constant mix.
    fn constant_trace_decisions_match_direct_decide(
        p in 0usize..=8,
        len in 2usize..24,
        frac in 0.0f64..=1.0,
        dcomp in 0.1f64..50.0,
        t_par in 0.1f64..20.0,
        msgs in 1u64..200,
        words in 1u64..4000,
        j in 1u64..5000,
    ) {
        let mut monitor = LoadMonitor::new(MonitorConfig {
            default_frac: prob(frac),
            ..Default::default()
        });
        for t in 0..len {
            prop_assert!(monitor.report(secs(t as f64), p as f64, None));
        }
        let mf = monitor.mix_forecast(secs(len as f64 - 1.0));
        prop_assert!(!mf.forecast.stale);
        prop_assert_eq!(mf.forecast.p, p);

        // The true mix: p contenders at the same fraction.
        let truth = WorkloadMix::from_probs(&vec![prob(frac); p]);

        let task = ParagonTask {
            dcomp_sun: secs(dcomp),
            t_paragon: secs(t_par),
            to_backend: vec![DataSet::burst(msgs, words)],
            from_backend: vec![DataSet::single(words)],
        };
        let pred = predictor();
        let direct = pred.decide(&task, &truth, j);
        let forecast_fed = pred.decide(&task, &mf.mix, j);
        // PartialEq on PlacementDecision is f64 equality — bit-identical.
        prop_assert_eq!(direct, forecast_fed);

        // The cached-profile path agrees too.
        let profile = pred.profile(&mf.mix);
        prop_assert_eq!(direct, pred.decide_with(&task, &profile, j));
    }
}
