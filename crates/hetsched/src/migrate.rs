//! Task migration under changing load (paper §4, future work).
//!
//! "Since system load may vary during the execution of an application,
//! the slowdown factors should be recalculated when the job mix changes,
//! and task migration should be considered."
//!
//! When the mix changes mid-run, a running task has three options:
//! finish where it is, or migrate to the other machine (paying a state
//! transfer) and finish there. This module evaluates the options with the
//! phased-load extension of the core model.

use contention_model::phased::LoadTimeline;
use contention_model::units::{secs, Seconds};
use serde::{Deserialize, Serialize};

/// A task in flight at the moment the job mix changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InFlightTask {
    /// Remaining *dedicated* work on the current machine, seconds.
    pub remaining_here: f64,
    /// Remaining dedicated work if executed on the other machine (the
    /// algorithms may differ, as the paper notes for library codes).
    pub remaining_there: f64,
    /// One-time cost of moving the task's state across the link under
    /// the *current* conditions, seconds.
    pub migration_cost: f64,
}

/// What to do with an in-flight task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MigrationDecision {
    /// Finish on the current machine.
    Stay {
        /// Predicted remaining wall-clock time.
        finish_in: f64,
    },
    /// Move and finish on the other machine.
    Migrate {
        /// Predicted remaining wall-clock time including the transfer.
        finish_in: f64,
    },
}

impl MigrationDecision {
    /// Predicted remaining time of the chosen option.
    pub fn finish_in(&self) -> f64 {
        match *self {
            MigrationDecision::Stay { finish_in } | MigrationDecision::Migrate { finish_in } => {
                finish_in
            }
        }
    }
}

/// Evaluates stay-vs-migrate. `here`/`there` are the load profiles of the
/// two machines *from the decision instant onward*; the migration itself
/// delays the remote start by `migration_cost` (during which the remote
/// timeline advances).
pub fn decide(task: &InFlightTask, here: &LoadTimeline, there: &LoadTimeline) -> MigrationDecision {
    let stay = here.completion_time(secs(task.remaining_here), Seconds::ZERO).get();
    let migrate = task.migration_cost
        + there.completion_time(secs(task.remaining_there), secs(task.migration_cost)).get();
    if migrate < stay {
        MigrationDecision::Migrate { finish_in: migrate }
    } else {
        MigrationDecision::Stay { finish_in: stay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_model::phased::LoadPhase;
    use contention_model::units::Slowdown;

    #[test]
    fn stays_when_local_is_unloaded() {
        let task = InFlightTask { remaining_here: 10.0, remaining_there: 8.0, migration_cost: 5.0 };
        let here = LoadTimeline::dedicated();
        let there = LoadTimeline::dedicated();
        let d = decide(&task, &here, &there);
        assert_eq!(d, MigrationDecision::Stay { finish_in: 10.0 });
    }

    #[test]
    fn migrates_away_from_heavy_contention() {
        // Local machine just picked up 4 hogs (slowdown 5); remote idle.
        let task =
            InFlightTask { remaining_here: 10.0, remaining_there: 12.0, migration_cost: 3.0 };
        let here = LoadTimeline::constant(Slowdown::new(5.0));
        let there = LoadTimeline::dedicated();
        let d = decide(&task, &here, &there);
        assert_eq!(d, MigrationDecision::Migrate { finish_in: 15.0 });
        assert!(d.finish_in() < 50.0);
    }

    #[test]
    fn migration_cost_can_tip_the_balance() {
        let here = LoadTimeline::constant(Slowdown::new(2.0));
        let there = LoadTimeline::dedicated();
        let cheap =
            InFlightTask { remaining_here: 10.0, remaining_there: 10.0, migration_cost: 1.0 };
        assert!(matches!(decide(&cheap, &here, &there), MigrationDecision::Migrate { .. }));
        let dear =
            InFlightTask { remaining_here: 10.0, remaining_there: 10.0, migration_cost: 11.0 };
        assert!(matches!(decide(&dear, &here, &there), MigrationDecision::Stay { .. }));
    }

    #[test]
    fn transient_remote_load_is_waited_out() {
        // The remote machine is busy for 2 s then free; migration takes
        // 3 s, so the task lands after the burst and runs dedicated.
        let task = InFlightTask { remaining_here: 20.0, remaining_there: 6.0, migration_cost: 3.0 };
        let here = LoadTimeline::constant(Slowdown::new(3.0));
        let there = LoadTimeline::new(vec![
            LoadPhase::new(secs(2.0), Slowdown::new(10.0)),
            LoadPhase::new(Seconds::INFINITY, Slowdown::ONE),
        ]);
        let d = decide(&task, &here, &there);
        // Migrate: 3 + 6 = 9 (the loaded phase ends before arrival);
        // stay: 60.
        assert_eq!(d, MigrationDecision::Migrate { finish_in: 9.0 });
    }

    #[test]
    fn asymmetric_remaining_work_matters() {
        // The remote algorithm is far slower on the remaining piece.
        let task = InFlightTask { remaining_here: 5.0, remaining_there: 40.0, migration_cost: 0.5 };
        let here = LoadTimeline::constant(Slowdown::new(4.0));
        let there = LoadTimeline::dedicated();
        assert!(matches!(decide(&task, &here, &there), MigrationDecision::Stay { .. }));
    }
}
