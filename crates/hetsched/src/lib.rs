//! # hetsched — contention-aware task allocation
//!
//! The consumer of the contention model: rank candidate allocations of a
//! coarse-grained task chain onto a heterogeneous platform using
//! slowdown-adjusted cost predictions, as motivated by the paper's
//! introductory example (Tables 1–4, reproduced in [`example`]).
//!
//! * [`task`] — workflows, per-machine dedicated costs, environments;
//! * [`eval`] — schedule evaluation, exhaustive search, and an exact
//!   `O(k·m²)` chain dynamic program (the paper's "straightforward"
//!   generalization to more than two machines);
//! * [`adapt`] — building environments from contention-model outputs;
//! * [`forecast`] — building environments from *forecasted* contention
//!   ([`SlowdownProfile`]s produced by the loadcast/predictd pipeline);
//! * [`example`] — the paper's worked example with its exact numbers;
//! * [`dag`] — DAG workflows with HEFT-style list scheduling (beyond the
//!   paper's chains);
//! * [`migrate`] — stay-vs-migrate decisions when the mix changes mid-run
//!   (the paper's §4 future work).

//!
//! modelcheck: no-panic, lossy-cast, float-env
#![warn(missing_docs)]

pub mod adapt;
pub mod dag;
pub mod eval;
pub mod example;
pub mod forecast;
pub mod migrate;
pub mod task;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::adapt::{cm2_environment, paragon_environment};
    pub use crate::dag::{Dag, DagTask};
    #[cfg(feature = "par")]
    pub use crate::eval::rank_all_par;
    pub use crate::eval::{
        best_chain_dp, best_exhaustive, best_exhaustive_oracle, best_exhaustive_with, evaluate,
        rank_all, rank_all_oracle, Schedule, SearchScratch,
    };
    pub use crate::forecast::{best_forecast, environment_from_profile, rank_all_forecast};
    pub use crate::migrate::{decide as decide_migration, InFlightTask, MigrationDecision};
    pub use crate::task::{Environment, Matrix, Task, Workflow};
}

pub use prelude::*;
