//! Bridging the contention model into scheduler environments.
//!
//! The contention model produces slowdown factors; this module packages
//! them as an [`Environment`] for a two-machine platform where machine 0
//! is the time-shared front-end and machine 1 the back-end.

use crate::task::{Environment, Matrix};
use contention_model::cm2;
use contention_model::delay::{CommDelayTable, CompDelayTable};
use contention_model::mix::WorkloadMix;
use contention_model::paragon;

/// Environment for a Sun/CM2 platform with `p` extra CPU-bound processes
/// on the front-end: computation and the (CPU-driven) link both slow by
/// `p + 1`; the CM2 itself is unaffected.
pub fn cm2_environment(p: u32) -> Environment {
    let s = cm2::slowdown(p).get();
    let mut link = Matrix::filled(2, 1.0);
    link.set(0, 1, s);
    link.set(1, 0, s);
    Environment { comp_slowdown: vec![s, 1.0], link_slowdown: link }
}

/// Environment for a Sun/Paragon platform under a workload mix:
/// front-end computation slows by the computation slowdown (with
/// contender message size `j_words`), the link by the communication
/// slowdown, and the space-shared Paragon stays dedicated.
pub fn paragon_environment(
    mix: &WorkloadMix,
    comm_delays: &CommDelayTable,
    comp_delays: &CompDelayTable,
    j_words: u64,
) -> Environment {
    let s_comp = paragon::comp_slowdown(mix, comp_delays, j_words).get();
    let s_comm = paragon::comm_slowdown(mix, comm_delays).get();
    let mut link = Matrix::filled(2, 1.0);
    link.set(0, 1, s_comm);
    link.set(1, 0, s_comm);
    Environment { comp_slowdown: vec![s_comp, 1.0], link_slowdown: link }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm2_environment_scales_frontend_only() {
        let env = cm2_environment(3);
        env.validate();
        assert_eq!(env.comp_slowdown, vec![4.0, 1.0]);
        assert_eq!(env.link_slowdown.get(0, 1), 4.0);
        assert_eq!(env.link_slowdown.get(1, 0), 4.0);
    }

    #[test]
    fn paragon_environment_uses_model_slowdowns() {
        let mix = WorkloadMix::from_fracs(&[0.0, 0.0]);
        let comm = CommDelayTable::new(vec![1.0, 2.0], vec![0.5, 1.0]);
        let comp = CompDelayTable::new(vec![1, 1000], vec![vec![0.1, 0.2], vec![0.6, 1.2]]);
        let env = paragon_environment(&mix, &comm, &comp, 1000);
        env.validate();
        // Two pure CPU hogs: compute slowdown 3, comm slowdown 1+delay_comp².
        assert!((env.comp_slowdown[0] - 3.0).abs() < 1e-12);
        assert!((env.link_slowdown.get(0, 1) - 3.0).abs() < 1e-12);
        assert_eq!(env.comp_slowdown[1], 1.0);
    }
}
