//! Scheduling against *forecasted* contention.
//!
//! The online pipeline (`loadcast` → `predictd`) produces a
//! [`SlowdownProfile`] for the forecast workload mix rather than raw
//! tables. This module accepts that profile directly: the front-end
//! machine's computation and its links are slowed by the cached factors,
//! every other machine stays dedicated — the paper's platform shape
//! (one time-shared front-end, space-shared back-ends) generalized to
//! any machine count.

use crate::eval::{best_exhaustive, rank_all, Schedule};
use crate::task::{Environment, Matrix, Workflow};
use contention_model::profile::SlowdownProfile;

/// Builds the environment for `machines` machines where `front_end`
/// carries the profiled contention: its computation slows by the
/// profile's computation factor (at contender message size `j_words`),
/// every link touching it by the communication factor.
pub fn environment_from_profile(
    machines: usize,
    front_end: usize,
    profile: &SlowdownProfile,
    j_words: u64,
) -> Environment {
    assert!(front_end < machines, "front-end index out of range");
    let s_comp = profile.comp_slowdown(j_words).get();
    let s_comm = profile.comm_slowdown().get();
    let mut comp = vec![1.0; machines];
    comp[front_end] = s_comp;
    let mut link = Matrix::filled(machines, 1.0);
    for other in 0..machines {
        if other != front_end {
            link.set(front_end, other, s_comm);
            link.set(other, front_end, s_comm);
        }
    }
    Environment { comp_slowdown: comp, link_slowdown: link }
}

/// Ranks every schedule of `wf` under the forecast contention profile
/// (best first) — the forecast-fed sibling of [`rank_all`].
pub fn rank_all_forecast(
    wf: &Workflow,
    front_end: usize,
    profile: &SlowdownProfile,
    j_words: u64,
) -> Vec<Schedule> {
    rank_all(wf, &environment_from_profile(wf.machines(), front_end, profile, j_words))
}

/// The best schedule of `wf` under the forecast contention profile.
pub fn best_forecast(
    wf: &Workflow,
    front_end: usize,
    profile: &SlowdownProfile,
    j_words: u64,
) -> Schedule {
    best_exhaustive(wf, &environment_from_profile(wf.machines(), front_end, profile, j_words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::paragon_environment;
    use crate::example;
    use contention_model::delay::{CommDelayTable, CompDelayTable};
    use contention_model::mix::WorkloadMix;

    fn tables() -> (CommDelayTable, CompDelayTable) {
        (
            CommDelayTable::new(vec![1.0, 2.0], vec![0.5, 1.0]),
            CompDelayTable::new(vec![1, 1000], vec![vec![0.1, 0.2], vec![0.6, 1.2]]),
        )
    }

    #[test]
    fn matches_the_adapt_path_for_two_machines() {
        let mix = WorkloadMix::from_fracs(&[0.3, 0.6]);
        let (comm, comp) = tables();
        let profile = SlowdownProfile::compute(&mix, &comm, &comp);
        for j in [1u64, 500, 2000] {
            let via_profile = environment_from_profile(2, 0, &profile, j);
            let via_tables = paragon_environment(&mix, &comm, &comp, j);
            assert_eq!(via_profile, via_tables, "j = {j}");
        }
    }

    #[test]
    fn dedicated_profile_reproduces_dedicated_ranking() {
        let (comm, comp) = tables();
        let profile = SlowdownProfile::compute(&WorkloadMix::new(), &comm, &comp);
        let wf = example::workflow();
        let ranked = rank_all_forecast(&wf, 0, &profile, 500);
        let direct = rank_all(&wf, &Environment::dedicated(2));
        assert_eq!(ranked, direct);
        assert_eq!(best_forecast(&wf, 0, &profile, 500), direct[0].clone());
    }

    #[test]
    fn contention_slows_only_the_front_end() {
        let mix = WorkloadMix::from_fracs(&[0.0, 0.0]);
        let (comm, comp) = tables();
        let profile = SlowdownProfile::compute(&mix, &comm, &comp);
        let env = environment_from_profile(3, 1, &profile, 1000);
        env.validate();
        assert_eq!(env.comp_slowdown, vec![1.0, 3.0, 1.0]);
        assert_eq!(env.link_slowdown.get(0, 2), 1.0);
        assert!(env.link_slowdown.get(1, 0) > 1.0);
        assert_eq!(env.link_slowdown.get(1, 0), env.link_slowdown.get(2, 1));
    }

    #[test]
    #[should_panic(expected = "front-end index")]
    fn front_end_must_exist() {
        let (comm, comp) = tables();
        let profile = SlowdownProfile::compute(&WorkloadMix::new(), &comm, &comp);
        environment_from_profile(2, 2, &profile, 1);
    }
}
