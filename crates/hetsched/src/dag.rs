//! DAG workflows and list scheduling.
//!
//! The paper's applications are "a few coarse-grained tasks"; its chain
//! model covers the common case, and the authors note the generalization
//! to more machines is straightforward. Real heterogeneous applications
//! (the climate and molecular-structure codes the introduction cites)
//! have fork/join structure, so this module generalizes the workflow to a
//! DAG and provides:
//!
//! * exact makespan evaluation of an assignment (critical-path over the
//!   slowdown-adjusted costs, with per-machine serialization);
//! * exhaustive search for small instances;
//! * an HEFT-style list scheduler (upward-rank priority, earliest-finish
//!   machine choice) for larger ones.

use crate::task::{Environment, Matrix};
use contention_model::units::f64_from_usize;
use serde::{Deserialize, Serialize};

/// A node of the DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagTask {
    /// Task name.
    pub name: String,
    /// Dedicated execution time per machine, seconds.
    pub exec: Vec<f64>,
    /// Predecessors: `(task index, dedicated comm cost matrix)` — the
    /// cost of moving the predecessor's output here, by machine pair
    /// (diagonal = 0).
    pub deps: Vec<(usize, Matrix)>,
}

/// A directed acyclic task graph over `m` machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dag {
    tasks: Vec<DagTask>,
    machines: usize,
}

impl Dag {
    /// Builds a DAG; tasks must be listed in a topological order (every
    /// dependency index is smaller than the dependent's index).
    pub fn new(tasks: Vec<DagTask>) -> Self {
        assert!(!tasks.is_empty(), "empty DAG");
        let machines = tasks[0].exec.len();
        assert!(machines > 0, "no machines");
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.exec.len(), machines, "task {i} machine count mismatch");
            for &(dep, ref comm) in &t.deps {
                assert!(dep < i, "task {i} depends on later task {dep} (not topological)");
                assert_eq!(comm.size(), machines, "task {i} edge matrix size");
            }
        }
        Dag { tasks, machines }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if there are no tasks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The tasks in topological order.
    pub fn tasks(&self) -> &[DagTask] {
        &self.tasks
    }

    /// Makespan of `assignment` under `env`: earliest-finish-time
    /// propagation honoring both dependencies and per-machine
    /// serialization (tasks mapped to one machine run in topological
    /// order).
    pub fn evaluate(&self, assignment: &[usize], env: &Environment) -> f64 {
        assert_eq!(assignment.len(), self.tasks.len(), "assignment length");
        let mut finish = vec![0.0f64; self.tasks.len()];
        let mut machine_free = vec![0.0f64; self.machines];
        for (i, t) in self.tasks.iter().enumerate() {
            let m = assignment[i];
            assert!(m < self.machines, "machine index out of range");
            // Data-ready time: all inputs have arrived.
            let mut ready = 0.0f64;
            for &(dep, ref comm) in &t.deps {
                let dm = assignment[dep];
                let link =
                    if dm == m { 0.0 } else { comm.get(dm, m) * env.link_slowdown.get(dm, m) };
                ready = ready.max(finish[dep] + link);
            }
            let start = ready.max(machine_free[m]);
            let end = start + t.exec[m] * env.comp_slowdown[m];
            finish[i] = end;
            machine_free[m] = end;
        }
        finish.iter().copied().fold(0.0, f64::max)
    }

    /// Exhaustive search over all `m^k` assignments (small instances).
    pub fn best_exhaustive(&self, env: &Environment) -> (Vec<usize>, f64) {
        let m = self.machines as u64;
        let k = self.tasks.len() as u32;
        // Overflow saturates and is then rejected by the size guard.
        let combos = m.checked_pow(k).unwrap_or(u64::MAX);
        assert!(combos <= 5_000_000, "exhaustive DAG search too large");
        // combos ≥ 1, so the first iteration always replaces the
        // infinite seed; seeding (rather than an `Option` + `expect`)
        // keeps the function total.
        let mut assignment = vec![0usize; self.tasks.len()];
        let mut best = (assignment.clone(), f64::INFINITY);
        for mut code in 0..combos {
            for slot in assignment.iter_mut() {
                *slot = (code % m) as usize;
                code /= m;
            }
            let cost = self.evaluate(&assignment, env);
            if cost < best.1 {
                best = (assignment.clone(), cost);
            }
        }
        best
    }

    /// Mean slowdown-adjusted execution time of a task (HEFT's `w̄ᵢ`).
    fn mean_exec(&self, i: usize, env: &Environment) -> f64 {
        let t = &self.tasks[i];
        t.exec.iter().zip(&env.comp_slowdown).map(|(e, s)| e * s).sum::<f64>()
            / f64_from_usize(self.machines)
    }

    /// Mean slowdown-adjusted cost of an edge (off-diagonal average).
    fn mean_comm(&self, comm: &Matrix, env: &Environment) -> f64 {
        let m = self.machines;
        if m < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for a in 0..m {
            for b in 0..m {
                if a != b {
                    sum += comm.get(a, b) * env.link_slowdown.get(a, b);
                }
            }
        }
        sum / f64_from_usize(m * (m - 1))
    }

    /// HEFT upward ranks: `rank(i) = w̄ᵢ + max over successors of
    /// (c̄ᵢⱼ + rank(j))`.
    pub fn upward_ranks(&self, env: &Environment) -> Vec<f64> {
        let n = self.tasks.len();
        let mut rank = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut best_succ = 0.0f64;
            for (j, t) in self.tasks.iter().enumerate().skip(i + 1) {
                for &(dep, ref comm) in &t.deps {
                    if dep == i {
                        best_succ = best_succ.max(self.mean_comm(comm, env) + rank[j]);
                    }
                }
            }
            rank[i] = self.mean_exec(i, env) + best_succ;
        }
        rank
    }

    /// HEFT-style list schedule: tasks in decreasing upward rank, each
    /// placed on the machine minimizing its earliest finish time given
    /// the partial schedule. Returns `(assignment, makespan)`.
    pub fn schedule_heft(&self, env: &Environment) -> (Vec<usize>, f64) {
        let n = self.tasks.len();
        let ranks = self.upward_ranks(env);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));

        let mut assignment = vec![usize::MAX; n];
        let mut finish = vec![0.0f64; n];
        let mut machine_free = vec![0.0f64; self.machines];
        for &i in &order {
            // Dependencies are always scheduled first: upward ranks
            // strictly decrease along edges (rank(dep) ≥ w̄ + rank(i)).
            let t = &self.tasks[i];
            // (machine, start, end); machine_free is nonempty for any
            // schedulable DAG, so the loop always improves on the seed.
            let mut best = (0usize, 0.0f64, f64::INFINITY);
            for (m, &free) in machine_free.iter().enumerate() {
                let mut ready = 0.0f64;
                for &(dep, ref comm) in &t.deps {
                    debug_assert!(assignment[dep] != usize::MAX, "dep not yet scheduled");
                    let dm = assignment[dep];
                    let link =
                        if dm == m { 0.0 } else { comm.get(dm, m) * env.link_slowdown.get(dm, m) };
                    ready = ready.max(finish[dep] + link);
                }
                let start = ready.max(free);
                let end = start + t.exec[m] * env.comp_slowdown[m];
                if end < best.2 {
                    best = (m, start, end);
                }
            }
            let (m, _start, end) = best;
            assignment[i] = m;
            finish[i] = end;
            machine_free[m] = end;
        }
        let makespan = finish.iter().copied().fold(0.0, f64::max);
        (assignment, makespan)
    }

    /// Lower bound on any schedule: the critical path with every cost at
    /// its per-task minimum and free communication.
    pub fn critical_path_bound(&self, env: &Environment) -> f64 {
        let n = self.tasks.len();
        let mut longest = vec![0.0f64; n];
        for (i, t) in self.tasks.iter().enumerate() {
            let min_exec = t
                .exec
                .iter()
                .zip(&env.comp_slowdown)
                .map(|(e, s)| e * s)
                .fold(f64::INFINITY, f64::min);
            let ready = t.deps.iter().map(|&(dep, _)| longest[dep]).fold(0.0, f64::max);
            longest[i] = ready + min_exec;
        }
        longest.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_comm(m: usize) -> Matrix {
        Matrix::filled(m, 0.0)
    }

    /// Fork-join: a → {b, c} → d, two machines.
    fn fork_join(comm_cost: f64) -> Dag {
        let mut comm = zero_comm(2);
        comm.set(0, 1, comm_cost);
        comm.set(1, 0, comm_cost);
        Dag::new(vec![
            DagTask { name: "a".into(), exec: vec![2.0, 2.0], deps: vec![] },
            DagTask { name: "b".into(), exec: vec![4.0, 4.0], deps: vec![(0, comm.clone())] },
            DagTask { name: "c".into(), exec: vec![4.0, 4.0], deps: vec![(0, comm.clone())] },
            DagTask {
                name: "d".into(),
                exec: vec![1.0, 1.0],
                deps: vec![(1, comm.clone()), (2, comm)],
            },
        ])
    }

    #[test]
    fn evaluate_serializes_same_machine() {
        let dag = fork_join(0.0);
        let env = Environment::dedicated(2);
        // Everything on machine 0: b and c serialize.
        assert_eq!(dag.evaluate(&[0, 0, 0, 0], &env), 2.0 + 4.0 + 4.0 + 1.0);
        // b and c in parallel on different machines (free comm).
        assert_eq!(dag.evaluate(&[0, 0, 1, 0], &env), 2.0 + 4.0 + 1.0);
    }

    #[test]
    fn communication_can_kill_parallelism() {
        let env = Environment::dedicated(2);
        // Cheap comm: splitting b/c wins.
        let cheap = fork_join(0.5);
        let (a, make) = cheap.best_exhaustive(&env);
        assert!(make < 11.0, "makespan {make}");
        assert_ne!(a[1], a[2], "b and c should split");
        // Expensive comm: serialize on one machine.
        let dear = fork_join(10.0);
        let (a, make) = dear.best_exhaustive(&env);
        assert_eq!(make, 11.0);
        assert!(a.iter().all(|&m| m == a[0]), "all on one machine: {a:?}");
    }

    #[test]
    fn heft_matches_exhaustive_on_fork_join() {
        for cost in [0.0, 0.5, 2.0, 10.0] {
            let dag = fork_join(cost);
            let env = Environment::dedicated(2);
            let (_, best) = dag.best_exhaustive(&env);
            let (_, heft) = dag.schedule_heft(&env);
            // HEFT is a heuristic: allow slack but demand near-optimality
            // on this tiny instance.
            assert!(heft <= best * 1.3 + 1e-9, "comm {cost}: heft {heft} vs optimal {best}");
            assert!(heft >= best - 1e-9);
        }
    }

    #[test]
    fn heft_respects_contention() {
        let dag = fork_join(0.5);
        let mut env = Environment::dedicated(2);
        env.comp_slowdown[0] = 10.0; // machine 0 is badly loaded
        let (assignment, _) = dag.schedule_heft(&env);
        // Everything lands on the unloaded machine 1.
        assert!(assignment.iter().all(|&m| m == 1), "{assignment:?}");
    }

    #[test]
    fn bounds_hold() {
        for cost in [0.0, 1.0, 5.0] {
            let dag = fork_join(cost);
            let env = Environment::dedicated(2);
            let bound = dag.critical_path_bound(&env);
            let (_, best) = dag.best_exhaustive(&env);
            let (_, heft) = dag.schedule_heft(&env);
            assert!(best >= bound - 1e-9);
            assert!(heft >= best - 1e-9);
        }
    }

    #[test]
    fn upward_ranks_decrease_along_edges() {
        let dag = fork_join(1.0);
        let env = Environment::dedicated(2);
        let ranks = dag.upward_ranks(&env);
        // a feeds b/c feeds d.
        assert!(ranks[0] > ranks[1]);
        assert!(ranks[1] > ranks[3]);
        assert_eq!(ranks[1], ranks[2]);
    }

    #[test]
    fn chain_dag_matches_chain_evaluator() {
        // A 3-task chain expressed both ways must agree.
        use crate::eval::evaluate as chain_eval;
        use crate::task::{Task, Workflow};
        let mut comm = Matrix::filled(2, 0.0);
        comm.set(0, 1, 3.0);
        comm.set(1, 0, 4.0);
        let wf = Workflow::new(vec![
            Task::with_edge("a", vec![5.0, 7.0], comm.clone()),
            Task::with_edge("b", vec![2.0, 1.0], comm.clone()),
            Task::terminal("c", vec![6.0, 3.0]),
        ]);
        let dag = Dag::new(vec![
            DagTask { name: "a".into(), exec: vec![5.0, 7.0], deps: vec![] },
            DagTask { name: "b".into(), exec: vec![2.0, 1.0], deps: vec![(0, comm.clone())] },
            DagTask { name: "c".into(), exec: vec![6.0, 3.0], deps: vec![(1, comm)] },
        ]);
        let mut env = Environment::dedicated(2);
        env.comp_slowdown[0] = 2.0;
        env.link_slowdown.set(0, 1, 3.0);
        for assignment in [[0, 0, 0], [0, 1, 0], [1, 0, 1], [1, 1, 1], [0, 1, 1]] {
            assert_eq!(
                dag.evaluate(&assignment, &env),
                chain_eval(&wf, &assignment, &env),
                "{assignment:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not topological")]
    fn rejects_forward_dependencies() {
        let comm = zero_comm(1);
        Dag::new(vec![DagTask { name: "a".into(), exec: vec![1.0], deps: vec![(0, comm)] }]);
    }
}
