//! The paper's introductory worked example (Tables 1–4).
//!
//! Two tasks `A → B` on machines `M1`, `M2`, with dedicated times from
//! Table 1/2. Three environments show how contention flips the best
//! allocation:
//!
//! 1. **Dedicated** — both tasks on `M1`, 16 time units.
//! 2. **`M1` CPU-bound ×3** (Table 3) — `A` moves to `M2`, `B` stays on
//!    `M1`: 38 units (10 less than keeping both on `M1`).
//! 3. **CPU ×3 and link ×3** (Tables 3+4) — the slowed link outweighs
//!    `A`'s gain on `M2`; both tasks return to `M1`: 48 units.

use crate::eval::{best_exhaustive, Schedule};
use crate::task::{Environment, Matrix, Task, Workflow};

/// The example's workflow: Tables 1 and 2.
pub fn workflow() -> Workflow {
    let comm = Matrix::from_rows(&[vec![0.0, 7.0], vec![8.0, 0.0]]);
    Workflow::new(vec![
        Task::with_edge("A", vec![12.0, 18.0], comm),
        Task::terminal("B", vec![4.0, 30.0]),
    ])
}

/// Scenario 1: the dedicated environment.
pub fn env_dedicated() -> Environment {
    Environment::dedicated(2)
}

/// Scenario 2: CPU-bound contenders slow `M1` by 3 (Table 3).
pub fn env_cpu_contention() -> Environment {
    let mut env = Environment::dedicated(2);
    env.comp_slowdown[0] = 3.0;
    env
}

/// Scenario 3: contenders also slow the `M1↔M2` link by 3 (Table 4).
pub fn env_cpu_and_link_contention() -> Environment {
    let mut env = env_cpu_contention();
    env.link_slowdown.set(0, 1, 3.0);
    env.link_slowdown.set(1, 0, 3.0);
    env
}

/// Solves all three scenarios; returns (dedicated, cpu, cpu+link).
pub fn solve_all() -> (Schedule, Schedule, Schedule) {
    let wf = workflow();
    (
        best_exhaustive(&wf, &env_dedicated()),
        best_exhaustive(&wf, &env_cpu_contention()),
        best_exhaustive(&wf, &env_cpu_and_link_contention()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    #[test]
    fn dedicated_puts_both_on_m1_in_16_units() {
        let (d, _, _) = solve_all();
        assert_eq!(d.assignment, vec![0, 0]);
        assert_eq!(d.makespan, 16.0);
    }

    #[test]
    fn cpu_contention_splits_tasks_at_38_units() {
        let (_, c, _) = solve_all();
        assert_eq!(c.assignment, vec![1, 0], "A on M2, B on M1");
        assert_eq!(c.makespan, 38.0);
        // The paper: "10 units less than if both tasks were executed on M1".
        let both_m1 = evaluate(&workflow(), &[0, 0], &env_cpu_contention());
        assert_eq!(both_m1 - c.makespan, 10.0);
    }

    #[test]
    fn link_contention_pulls_both_back_to_m1_at_48_units() {
        let (_, _, l) = solve_all();
        assert_eq!(l.assignment, vec![0, 0]);
        assert_eq!(l.makespan, 48.0);
        // The split schedule now costs 18 + 24 + 12 = 54.
        let split = evaluate(&workflow(), &[1, 0], &env_cpu_and_link_contention());
        assert_eq!(split, 54.0);
    }

    #[test]
    fn non_dedicated_tables_match_paper() {
        // Table 3: execution times under CPU contention.
        let wf = workflow();
        let env = env_cpu_contention();
        assert_eq!(wf.tasks[0].exec[0] * env.comp_slowdown[0], 36.0);
        assert_eq!(wf.tasks[1].exec[0] * env.comp_slowdown[0], 12.0);
        // Table 4: communication under link contention.
        let env = env_cpu_and_link_contention();
        let comm = wf.tasks[0].comm_to_next.as_ref().unwrap();
        assert_eq!(comm.get(0, 1) * env.link_slowdown.get(0, 1), 21.0);
        assert_eq!(comm.get(1, 0) * env.link_slowdown.get(1, 0), 24.0);
    }
}
