//! Schedule evaluation and search.
//!
//! A schedule assigns each task of the chain to a machine. Its cost is the
//! chain's end-to-end time with every term adjusted by the environment's
//! slowdown factors — the contention model's output. Small instances are
//! solved exactly by enumeration (`mᵏ` schedules for `k` tasks); larger
//! ones use a dynamic program over the chain that is exact for chain
//! workflows and runs in `O(k·m²)`.

use crate::task::{Environment, Workflow};
use serde::{Deserialize, Serialize};

/// A schedule with its predicted end-to-end time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Machine index per task.
    pub assignment: Vec<usize>,
    /// Predicted end-to-end time under the given environment.
    pub makespan: f64,
}

/// Predicted end-to-end time of `assignment` under `env`: slowed
/// execution of every task plus slowed transfers between consecutive
/// tasks on different machines.
pub fn evaluate(wf: &Workflow, assignment: &[usize], env: &Environment) -> f64 {
    assert_eq!(assignment.len(), wf.len(), "assignment length mismatch");
    let mut total = 0.0;
    for (i, task) in wf.tasks.iter().enumerate() {
        let m = assignment[i];
        assert!(m < wf.machines(), "machine index out of range");
        total += task.exec[m] * env.comp_slowdown[m];
        if let Some(comm) = &task.comm_to_next {
            let next = assignment[i + 1];
            if next != m {
                total += comm.get(m, next) * env.link_slowdown.get(m, next);
            }
        }
    }
    total
}

/// Exhaustive search over all `mᵏ` schedules. Exact; use only for small
/// instances (`mᵏ ≤ ~10⁶`).
pub fn best_exhaustive(wf: &Workflow, env: &Environment) -> Schedule {
    let m = wf.machines();
    let k = wf.len();
    let combos = (m as u64).checked_pow(k as u32).expect("instance too large");
    assert!(combos <= 10_000_000, "exhaustive search too large; use best_chain_dp");
    let mut best: Option<Schedule> = None;
    let mut assignment = vec![0usize; k];
    for mut code in 0..combos {
        for slot in assignment.iter_mut() {
            *slot = (code % m as u64) as usize;
            code /= m as u64;
        }
        let cost = evaluate(wf, &assignment, env);
        if best.as_ref().is_none_or(|b| cost < b.makespan) {
            best = Some(Schedule { assignment: assignment.clone(), makespan: cost });
        }
    }
    best.expect("at least one schedule")
}

/// Exact dynamic program over the chain: `dp[m]` = best cost of the
/// prefix with the latest task on machine `m`. `O(k·m²)` and exact for
/// chain workflows (which is the workflow shape this crate models).
pub fn best_chain_dp(wf: &Workflow, env: &Environment) -> Schedule {
    let m = wf.machines();
    // dp cost and backpointers.
    let mut dp: Vec<f64> = (0..m)
        .map(|mach| wf.tasks[0].exec[mach] * env.comp_slowdown[mach])
        .collect();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(wf.len());
    for i in 1..wf.len() {
        let comm = wf.tasks[i - 1].comm_to_next.as_ref().expect("interior edge");
        let mut next_dp = vec![f64::INFINITY; m];
        let mut next_back = vec![0usize; m];
        for to in 0..m {
            let exec = wf.tasks[i].exec[to] * env.comp_slowdown[to];
            for from in 0..m {
                let link = if from == to {
                    0.0
                } else {
                    comm.get(from, to) * env.link_slowdown.get(from, to)
                };
                let cost = dp[from] + link + exec;
                if cost < next_dp[to] {
                    next_dp[to] = cost;
                    next_back[to] = from;
                }
            }
        }
        dp = next_dp;
        back.push(next_back);
    }
    // Trace back the best final machine.
    let (mut mach, &makespan) = dp
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs"))
        .expect("nonempty dp");
    let mut assignment = vec![0usize; wf.len()];
    assignment[wf.len() - 1] = mach;
    for i in (0..back.len()).rev() {
        mach = back[i][mach];
        assignment[i] = mach;
    }
    Schedule { assignment, makespan }
}

/// Ranks every schedule of a small instance, best first — useful for
/// inspecting how contention reorders the candidates.
pub fn rank_all(wf: &Workflow, env: &Environment) -> Vec<Schedule> {
    let m = wf.machines();
    let k = wf.len();
    let combos = (m as u64).pow(k as u32);
    assert!(combos <= 100_000, "too many schedules to rank");
    let mut all = Vec::with_capacity(combos as usize);
    let mut assignment = vec![0usize; k];
    for mut code in 0..combos {
        for slot in assignment.iter_mut() {
            *slot = (code % m as u64) as usize;
            code /= m as u64;
        }
        all.push(Schedule {
            assignment: assignment.clone(),
            makespan: evaluate(wf, &assignment, env),
        });
    }
    all.sort_by(|a, b| a.makespan.partial_cmp(&b.makespan).expect("finite"));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Matrix, Task};

    fn two_task_wf() -> Workflow {
        let comm = Matrix::from_rows(&[vec![0.0, 7.0], vec![8.0, 0.0]]);
        Workflow::new(vec![
            Task::with_edge("A", vec![12.0, 18.0], comm),
            Task::terminal("B", vec![4.0, 30.0]),
        ])
    }

    #[test]
    fn evaluate_dedicated() {
        let wf = two_task_wf();
        let env = Environment::dedicated(2);
        assert_eq!(evaluate(&wf, &[0, 0], &env), 16.0);
        assert_eq!(evaluate(&wf, &[1, 0], &env), 18.0 + 8.0 + 4.0);
        assert_eq!(evaluate(&wf, &[0, 1], &env), 12.0 + 7.0 + 30.0);
        assert_eq!(evaluate(&wf, &[1, 1], &env), 48.0);
    }

    #[test]
    fn exhaustive_finds_dedicated_optimum() {
        let wf = two_task_wf();
        let best = best_exhaustive(&wf, &Environment::dedicated(2));
        assert_eq!(best.assignment, vec![0, 0]);
        assert_eq!(best.makespan, 16.0);
    }

    #[test]
    fn dp_matches_exhaustive_on_random_instances() {
        // Deterministic pseudo-random chain instances.
        let mut s = 12345u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for machines in 2..=4 {
            for tasks in 1..=6 {
                let mut v = Vec::new();
                for i in 0..tasks {
                    let exec: Vec<f64> = (0..machines).map(|_| next() + 0.1).collect();
                    if i + 1 < tasks {
                        let mut comm = Matrix::filled(machines, 0.0);
                        for a in 0..machines {
                            for b in 0..machines {
                                if a != b {
                                    comm.set(a, b, next());
                                }
                            }
                        }
                        v.push(Task::with_edge(format!("t{i}"), exec, comm));
                    } else {
                        v.push(Task::terminal(format!("t{i}"), exec));
                    }
                }
                let wf = Workflow::new(v);
                let mut env = Environment::dedicated(machines);
                for f in env.comp_slowdown.iter_mut() {
                    *f = 1.0 + next() / 5.0;
                }
                let ex = best_exhaustive(&wf, &env);
                let dp = best_chain_dp(&wf, &env);
                assert!(
                    (ex.makespan - dp.makespan).abs() < 1e-9,
                    "machines={machines} tasks={tasks}: {} vs {}",
                    ex.makespan,
                    dp.makespan
                );
            }
        }
    }

    #[test]
    fn rank_all_sorted_and_complete() {
        let wf = two_task_wf();
        let ranked = rank_all(&wf, &Environment::dedicated(2));
        assert_eq!(ranked.len(), 4);
        assert!(ranked.windows(2).all(|w| w[0].makespan <= w[1].makespan));
        assert_eq!(ranked[0].assignment, vec![0, 0]);
    }

    #[test]
    fn slowdown_reorders_schedules() {
        let wf = two_task_wf();
        let mut env = Environment::dedicated(2);
        env.comp_slowdown[0] = 3.0;
        let best = best_exhaustive(&wf, &env);
        // A moves to M2, B stays on the slowed M1 (the paper's Table 3).
        assert_eq!(best.assignment, vec![1, 0]);
        assert_eq!(best.makespan, 18.0 + 8.0 + 12.0);
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn evaluate_checks_length() {
        let wf = two_task_wf();
        evaluate(&wf, &[0], &Environment::dedicated(2));
    }
}
