//! Schedule evaluation and search.
//!
//! A schedule assigns each task of the chain to a machine. Its cost is the
//! chain's end-to-end time with every term adjusted by the environment's
//! slowdown factors — the contention model's output. Small instances are
//! solved exactly by enumeration (`mᵏ` schedules for `k` tasks); larger
//! ones use a dynamic program over the chain that is exact for chain
//! workflows and runs in `O(k·m²)`.
//!
//! ## Delta-evaluated enumeration
//!
//! Naive enumeration re-evaluates all `k` exec terms and `k−1` edge terms
//! of every schedule, `O(k)` per candidate. [`best_exhaustive`] and
//! [`rank_all`] instead walk the `mᵏ` assignments in **mixed-radix
//! reflected Gray-code order**, where consecutive schedules differ in a
//! single task's machine by ±1. Moving one task only changes its own exec
//! term and the two edges adjacent to it, so the running makespan is
//! updated in `O(1)` per schedule. To bound floating-point drift from the
//! long chain of adds and subtracts, the walk resynchronizes against the
//! full [`evaluate`] every [`RESYNC_INTERVAL`] steps, and the winning
//! schedule is always re-evaluated exactly before being returned.
//!
//! The seed's full-re-evaluation enumeration survives as
//! [`best_exhaustive_oracle`] / [`rank_all_oracle`]: slower, but
//! trivially correct, and pinned against the Gray-code walk by unit and
//! property tests.

use crate::task::{Environment, Workflow};
use serde::{Deserialize, Serialize};

#[cfg(feature = "par")]
use rayon::prelude::*;

/// Steps between exact resynchronizations of the incrementally maintained
/// makespan. Each delta touches ≤ 3 terms, so drift over a window is a few
/// thousand rounding errors — far below the 1e-9 tolerances used by
/// callers — and the final winner is re-evaluated exactly regardless.
pub const RESYNC_INTERVAL: u64 = 4096;

/// A schedule with its predicted end-to-end time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Machine index per task.
    pub assignment: Vec<usize>,
    /// Predicted end-to-end time under the given environment.
    pub makespan: f64,
}

/// Predicted end-to-end time of `assignment` under `env`: slowed
/// execution of every task plus slowed transfers between consecutive
/// tasks on different machines.
pub fn evaluate(wf: &Workflow, assignment: &[usize], env: &Environment) -> f64 {
    assert_eq!(assignment.len(), wf.len(), "assignment length mismatch");
    let mut total = 0.0;
    for (i, task) in wf.tasks.iter().enumerate() {
        let m = assignment[i];
        assert!(m < wf.machines(), "machine index out of range");
        total += task.exec[m] * env.comp_slowdown[m];
        if let Some(comm) = &task.comm_to_next {
            let next = assignment[i + 1];
            if next != m {
                total += comm.get(m, next) * env.link_slowdown.get(m, next);
            }
        }
    }
    total
}

/// Reusable buffers for the Gray-code searches, so repeated calls (one per
/// candidate environment in a sweep) allocate nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    digits: Vec<usize>,
    dirs: Vec<i8>,
    best: Vec<usize>,
}

impl SearchScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        SearchScratch::default()
    }
}

/// One-coordinate-at-a-time walk over all `mᵏ` assignments in reflected
/// Gray-code order, maintaining the makespan incrementally.
struct DeltaWalker<'a> {
    wf: &'a Workflow,
    env: &'a Environment,
    machines: usize,
    assignment: &'a mut Vec<usize>,
    dirs: &'a mut Vec<i8>,
    cost: f64,
    since_resync: u64,
}

impl<'a> DeltaWalker<'a> {
    /// Starts the walk at rank 0 (the all-zeros assignment).
    fn start(
        wf: &'a Workflow,
        env: &'a Environment,
        assignment: &'a mut Vec<usize>,
        dirs: &'a mut Vec<i8>,
    ) -> Self {
        Self::start_at_rank(wf, env, 0, assignment, dirs)
    }

    /// Starts the walk at an arbitrary `rank` of the Gray sequence.
    ///
    /// Writing `rank` in base `m` as digits `b₀ (least significant) …
    /// b₍ₖ₋₁₎`, the Gray digit is `gᵢ = bᵢ` when the suffix sum
    /// `Σ_{j>i} bⱼ` is even and `m−1−bᵢ` when odd, and the walk direction
    /// at coordinate `i` is `+1`/`−1` on the same parity. This lets
    /// disjoint rank ranges be walked independently (see
    /// [`rank_all_par`](crate::eval)).
    fn start_at_rank(
        wf: &'a Workflow,
        env: &'a Environment,
        rank: u64,
        assignment: &'a mut Vec<usize>,
        dirs: &'a mut Vec<i8>,
    ) -> Self {
        let m = wf.machines() as u64;
        let k = wf.len();
        assignment.clear();
        dirs.clear();
        let mut r = rank;
        for _ in 0..k {
            assignment.push((r % m) as usize);
            r /= m;
        }
        dirs.resize(k, 1);
        // Reflect digits by suffix parity, most significant first.
        let mut parity = 0u64;
        for i in (0..k).rev() {
            let b = assignment[i] as u64;
            if !parity.is_multiple_of(2) {
                assignment[i] = (m - 1 - b) as usize;
                dirs[i] = -1;
            }
            parity += b;
        }
        let cost = evaluate(wf, assignment, env);
        DeltaWalker { wf, env, machines: wf.machines(), assignment, dirs, cost, since_resync: 0 }
    }

    /// Current assignment.
    fn assignment(&self) -> &[usize] {
        self.assignment
    }

    /// Incrementally maintained makespan of the current assignment.
    fn cost(&self) -> f64 {
        self.cost
    }

    /// Slowed cost of the edge out of task `i` between machines `from` and
    /// `to` (0 when they coincide).
    fn edge(&self, i: usize, from: usize, to: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        // Every non-final chain task has an outgoing edge; a missing
        // one means "no data moves", which costs nothing.
        let Some(comm) = self.wf.tasks[i].comm_to_next.as_ref() else {
            return 0.0;
        };
        comm.get(from, to) * self.env.link_slowdown.get(from, to)
    }

    /// Advances to the next assignment in Gray order; `false` once every
    /// assignment has been visited. Amortized `O(1)` (odometer carries).
    fn step(&mut self) -> bool {
        let k = self.assignment.len();
        for j in 0..k {
            let next = self.assignment[j] as isize + self.dirs[j] as isize;
            if next >= 0 && (next as usize) < self.machines {
                self.apply_move(j, next as usize);
                return true;
            }
            // Coordinate j is at its boundary: reverse it and carry on.
            self.dirs[j] = -self.dirs[j];
        }
        false
    }

    /// Moves task `j` to machine `new`, updating the makespan with the
    /// three affected terms only.
    fn apply_move(&mut self, j: usize, new: usize) {
        let old = self.assignment[j];
        let task = &self.wf.tasks[j];
        let mut delta = task.exec[new] * self.env.comp_slowdown[new]
            - task.exec[old] * self.env.comp_slowdown[old];
        if j > 0 {
            let from = self.assignment[j - 1];
            delta += self.edge(j - 1, from, new) - self.edge(j - 1, from, old);
        }
        if task.comm_to_next.is_some() {
            let to = self.assignment[j + 1];
            delta += self.edge(j, new, to) - self.edge(j, old, to);
        }
        self.assignment[j] = new;
        self.cost += delta;
        self.since_resync += 1;
        if self.since_resync >= RESYNC_INTERVAL {
            self.cost = evaluate(self.wf, self.assignment, self.env);
            self.since_resync = 0;
        }
    }
}

/// Exhaustive search over all `mᵏ` schedules via the Gray-code
/// delta-evaluated walk. Exact; use only for small instances
/// (`mᵏ ≤ ~10⁶`). Allocates scratch internally — use
/// [`best_exhaustive_with`] to reuse buffers across calls.
pub fn best_exhaustive(wf: &Workflow, env: &Environment) -> Schedule {
    best_exhaustive_with(wf, env, &mut SearchScratch::default())
}

/// [`best_exhaustive`] with caller-owned scratch buffers, allocation-free
/// in steady state when the instance shape repeats.
pub fn best_exhaustive_with(
    wf: &Workflow,
    env: &Environment,
    scratch: &mut SearchScratch,
) -> Schedule {
    let m = wf.machines();
    let k = wf.len();
    // Overflow saturates and is then rejected by the size guard.
    let combos = (m as u64).checked_pow(k as u32).unwrap_or(u64::MAX);
    assert!(combos <= 10_000_000, "exhaustive search too large; use best_chain_dp");
    let SearchScratch { digits, dirs, best } = scratch;
    let mut walker = DeltaWalker::start(wf, env, digits, dirs);
    best.clear();
    best.extend_from_slice(walker.assignment());
    let mut best_cost = walker.cost();
    while walker.step() {
        if walker.cost() < best_cost {
            best_cost = walker.cost();
            best.clear();
            best.extend_from_slice(walker.assignment());
        }
    }
    // Return the exactly re-evaluated makespan, not the drifting running sum.
    let assignment = best.clone();
    let makespan = evaluate(wf, &assignment, env);
    Schedule { assignment, makespan }
}

/// The seed's full-re-evaluation exhaustive search, retained as the test
/// oracle for [`best_exhaustive`]: `O(k)` per schedule, no shared state.
pub fn best_exhaustive_oracle(wf: &Workflow, env: &Environment) -> Schedule {
    let m = wf.machines();
    let k = wf.len();
    // Overflow saturates and is then rejected by the size guard.
    let combos = (m as u64).checked_pow(k as u32).unwrap_or(u64::MAX);
    assert!(combos <= 10_000_000, "exhaustive search too large; use best_chain_dp");
    // combos ≥ 1, so the first iteration always replaces the infinite
    // seed; seeding (rather than an `Option` + `expect`) keeps the
    // function total.
    let mut assignment = vec![0usize; k];
    let mut best = Schedule { assignment: assignment.clone(), makespan: f64::INFINITY };
    for mut code in 0..combos {
        for slot in assignment.iter_mut() {
            *slot = (code % m as u64) as usize;
            code /= m as u64;
        }
        let cost = evaluate(wf, &assignment, env);
        if cost < best.makespan {
            best = Schedule { assignment: assignment.clone(), makespan: cost };
        }
    }
    best
}

/// Exact dynamic program over the chain: `dp[m]` = best cost of the
/// prefix with the latest task on machine `m`. `O(k·m²)` and exact for
/// chain workflows (which is the workflow shape this crate models).
pub fn best_chain_dp(wf: &Workflow, env: &Environment) -> Schedule {
    let m = wf.machines();
    // dp cost and backpointers.
    let mut dp: Vec<f64> =
        (0..m).map(|mach| wf.tasks[0].exec[mach] * env.comp_slowdown[mach]).collect();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(wf.len());
    for i in 1..wf.len() {
        // Every non-final chain task has an outgoing edge; a missing
        // one moves no data and contributes zero link cost.
        let comm = wf.tasks[i - 1].comm_to_next.as_ref();
        let mut next_dp = vec![f64::INFINITY; m];
        let mut next_back = vec![0usize; m];
        for to in 0..m {
            let exec = wf.tasks[i].exec[to] * env.comp_slowdown[to];
            for (from, &dp_from) in dp.iter().enumerate() {
                let link = if from == to {
                    0.0
                } else {
                    comm.map_or(0.0, |c| c.get(from, to) * env.link_slowdown.get(from, to))
                };
                let cost = dp_from + link + exec;
                if cost < next_dp[to] {
                    next_dp[to] = cost;
                    next_back[to] = from;
                }
            }
        }
        dp = next_dp;
        back.push(next_back);
    }
    // Trace back the best final machine. dp has one entry per machine
    // and m ≥ 1; the infinite fallback keeps the function total anyway.
    let (mut mach, makespan) = dp
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map_or((0, f64::INFINITY), |(i, &v)| (i, v));
    let mut assignment = vec![0usize; wf.len()];
    assignment[wf.len() - 1] = mach;
    for i in (0..back.len()).rev() {
        mach = back[i][mach];
        assignment[i] = mach;
    }
    Schedule { assignment, makespan }
}

/// Ranks every schedule of a small instance, best first — useful for
/// inspecting how contention reorders the candidates. Enumerates via the
/// Gray-code walk, so each makespan costs `O(1)` instead of `O(k)`.
pub fn rank_all(wf: &Workflow, env: &Environment) -> Vec<Schedule> {
    let m = wf.machines();
    let k = wf.len();
    let combos = (m as u64).pow(k as u32);
    assert!(combos <= 100_000, "too many schedules to rank");
    let mut all = Vec::with_capacity(combos as usize);
    let mut scratch = SearchScratch::default();
    let SearchScratch { digits, dirs, .. } = &mut scratch;
    let mut walker = DeltaWalker::start(wf, env, digits, dirs);
    loop {
        all.push(Schedule { assignment: walker.assignment().to_vec(), makespan: walker.cost() });
        if !walker.step() {
            break;
        }
    }
    all.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));
    all
}

/// The seed's full-re-evaluation ranking, retained as the test oracle for
/// [`rank_all`].
pub fn rank_all_oracle(wf: &Workflow, env: &Environment) -> Vec<Schedule> {
    let m = wf.machines();
    let k = wf.len();
    let combos = (m as u64).pow(k as u32);
    assert!(combos <= 100_000, "too many schedules to rank");
    let mut all = Vec::with_capacity(combos as usize);
    let mut assignment = vec![0usize; k];
    for mut code in 0..combos {
        for slot in assignment.iter_mut() {
            *slot = (code % m as u64) as usize;
            code /= m as u64;
        }
        all.push(Schedule {
            assignment: assignment.clone(),
            makespan: evaluate(wf, &assignment, env),
        });
    }
    all.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));
    all
}

/// Parallel [`rank_all`]: splits the Gray sequence into disjoint rank
/// ranges, decodes each range's starting state directly from its rank
/// (see [`DeltaWalker::start_at_rank`]), and walks the ranges on separate
/// threads. Chunk boundaries pay one full evaluation each; everything
/// else stays `O(1)` per schedule.
#[cfg(feature = "par")]
pub fn rank_all_par(wf: &Workflow, env: &Environment) -> Vec<Schedule> {
    let m = wf.machines();
    let k = wf.len();
    let combos = (m as u64).pow(k as u32);
    assert!(combos <= 100_000, "too many schedules to rank");
    // Enough chunks to feed every core without paying a resync per handful
    // of schedules.
    let chunk = combos.div_ceil(64).max(64);
    let starts: Vec<u64> = (0..combos).step_by(chunk as usize).collect();
    let per_chunk: Vec<Vec<Schedule>> = starts
        .into_par_iter()
        .map(|start| {
            let end = (start + chunk).min(combos);
            let mut scratch = SearchScratch::default();
            let SearchScratch { digits, dirs, .. } = &mut scratch;
            let mut walker = DeltaWalker::start_at_rank(wf, env, start, digits, dirs);
            let mut out = Vec::with_capacity((end - start) as usize);
            for _ in start..end {
                out.push(Schedule {
                    assignment: walker.assignment().to_vec(),
                    makespan: walker.cost(),
                });
                walker.step();
            }
            out
        })
        .collect();
    let mut all: Vec<Schedule> = per_chunk.into_iter().flatten().collect();
    all.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Matrix, Task};
    use std::collections::HashSet;

    fn two_task_wf() -> Workflow {
        let comm = Matrix::from_rows(&[vec![0.0, 7.0], vec![8.0, 0.0]]);
        Workflow::new(vec![
            Task::with_edge("A", vec![12.0, 18.0], comm),
            Task::terminal("B", vec![4.0, 30.0]),
        ])
    }

    /// Deterministic pseudo-random chain instances with contended
    /// environments (both compute and link slowdowns perturbed).
    fn random_instances() -> Vec<(Workflow, Environment)> {
        let mut s = 12345u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let mut out = Vec::new();
        for machines in 2..=4 {
            for tasks in 1..=6 {
                let mut v = Vec::new();
                for i in 0..tasks {
                    let exec: Vec<f64> = (0..machines).map(|_| next() + 0.1).collect();
                    if i + 1 < tasks {
                        let mut comm = Matrix::filled(machines, 0.0);
                        for a in 0..machines {
                            for b in 0..machines {
                                if a != b {
                                    comm.set(a, b, next());
                                }
                            }
                        }
                        v.push(Task::with_edge(format!("t{i}"), exec, comm));
                    } else {
                        v.push(Task::terminal(format!("t{i}"), exec));
                    }
                }
                let wf = Workflow::new(v);
                let mut env = Environment::dedicated(machines);
                for f in env.comp_slowdown.iter_mut() {
                    *f = 1.0 + next() / 5.0;
                }
                for a in 0..machines {
                    for b in 0..machines {
                        if a != b {
                            env.link_slowdown.set(a, b, 1.0 + next() / 5.0);
                        }
                    }
                }
                out.push((wf, env));
            }
        }
        out
    }

    #[test]
    fn evaluate_dedicated() {
        let wf = two_task_wf();
        let env = Environment::dedicated(2);
        assert_eq!(evaluate(&wf, &[0, 0], &env), 16.0);
        assert_eq!(evaluate(&wf, &[1, 0], &env), 18.0 + 8.0 + 4.0);
        assert_eq!(evaluate(&wf, &[0, 1], &env), 12.0 + 7.0 + 30.0);
        assert_eq!(evaluate(&wf, &[1, 1], &env), 48.0);
    }

    #[test]
    fn exhaustive_finds_dedicated_optimum() {
        let wf = two_task_wf();
        let best = best_exhaustive(&wf, &Environment::dedicated(2));
        assert_eq!(best.assignment, vec![0, 0]);
        assert_eq!(best.makespan, 16.0);
    }

    #[test]
    fn gray_walk_visits_every_assignment_once_changing_one_coordinate() {
        let comm = Matrix::filled(3, 1.0);
        let wf = Workflow::new(vec![
            Task::with_edge("a", vec![1.0, 2.0, 3.0], comm.clone()),
            Task::with_edge("b", vec![2.0, 1.0, 4.0], comm),
            Task::terminal("c", vec![3.0, 2.0, 1.0]),
        ]);
        let env = Environment::dedicated(3);
        let mut scratch = SearchScratch::new();
        let SearchScratch { digits, dirs, .. } = &mut scratch;
        let mut walker = DeltaWalker::start(&wf, &env, digits, dirs);
        let mut seen = HashSet::new();
        let mut prev = walker.assignment().to_vec();
        seen.insert(prev.clone());
        // The running cost must agree with a fresh evaluation at every step.
        assert!((walker.cost() - evaluate(&wf, &prev, &env)).abs() < 1e-9);
        while walker.step() {
            let cur = walker.assignment().to_vec();
            let diffs: Vec<usize> = (0..cur.len()).filter(|&i| cur[i] != prev[i]).collect();
            assert_eq!(diffs.len(), 1, "exactly one coordinate per step");
            let d = diffs[0];
            assert_eq!(cur[d].abs_diff(prev[d]), 1, "moves are ±1");
            assert!((walker.cost() - evaluate(&wf, &cur, &env)).abs() < 1e-9);
            assert!(seen.insert(cur.clone()), "assignment revisited: {cur:?}");
            prev = cur;
        }
        assert_eq!(seen.len(), 27, "all 3³ assignments visited");
    }

    #[test]
    fn start_at_rank_matches_sequential_walk() {
        let comm = Matrix::filled(3, 2.0);
        let wf = Workflow::new(vec![
            Task::with_edge("a", vec![1.0, 2.0, 3.0], comm.clone()),
            Task::with_edge("b", vec![2.0, 1.0, 4.0], comm),
            Task::terminal("c", vec![3.0, 2.0, 1.0]),
        ]);
        let env = Environment::dedicated(3);
        // Collect the sequence from rank 0.
        let mut scratch = SearchScratch::new();
        let SearchScratch { digits, dirs, .. } = &mut scratch;
        let mut walker = DeltaWalker::start(&wf, &env, digits, dirs);
        let mut seq = vec![walker.assignment().to_vec()];
        while walker.step() {
            seq.push(walker.assignment().to_vec());
        }
        // Every rank must decode to the same assignment the walk reaches.
        for (rank, expect) in seq.iter().enumerate() {
            let mut s2 = SearchScratch::new();
            let SearchScratch { digits, dirs, .. } = &mut s2;
            let w = DeltaWalker::start_at_rank(&wf, &env, rank as u64, digits, dirs);
            assert_eq!(w.assignment(), expect.as_slice(), "rank {rank}");
        }
    }

    #[test]
    fn gray_search_matches_oracle_on_random_instances() {
        let mut scratch = SearchScratch::new();
        for (wf, env) in random_instances() {
            let fast = best_exhaustive_with(&wf, &env, &mut scratch);
            let oracle = best_exhaustive_oracle(&wf, &env);
            assert!(
                (fast.makespan - oracle.makespan).abs() < 1e-9,
                "makespan {} vs oracle {}",
                fast.makespan,
                oracle.makespan
            );
        }
    }

    #[test]
    fn resync_bounds_drift_on_long_walks() {
        // 4⁸ = 65536 schedules — several resync windows deep.
        let machines = 4;
        let tasks = 8;
        let mut s = 99u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let mut v = Vec::new();
        for i in 0..tasks {
            let exec: Vec<f64> = (0..machines).map(|_| next() + 0.1).collect();
            if i + 1 < tasks {
                let mut comm = Matrix::filled(machines, 0.0);
                for a in 0..machines {
                    for b in 0..machines {
                        if a != b {
                            comm.set(a, b, next());
                        }
                    }
                }
                v.push(Task::with_edge(format!("t{i}"), exec, comm));
            } else {
                v.push(Task::terminal(format!("t{i}"), exec));
            }
        }
        let wf = Workflow::new(v);
        let mut env = Environment::dedicated(machines);
        for f in env.comp_slowdown.iter_mut() {
            *f = 1.0 + next() / 3.0;
        }
        let fast = best_exhaustive(&wf, &env);
        let dp = best_chain_dp(&wf, &env);
        assert!((fast.makespan - dp.makespan).abs() < 1e-9);
        // The returned makespan is exact, not the running sum.
        assert_eq!(fast.makespan, evaluate(&wf, &fast.assignment, &env));
    }

    #[test]
    fn dp_matches_exhaustive_on_random_instances() {
        for (wf, env) in random_instances() {
            let ex = best_exhaustive(&wf, &env);
            let dp = best_chain_dp(&wf, &env);
            assert!((ex.makespan - dp.makespan).abs() < 1e-9, "{} vs {}", ex.makespan, dp.makespan);
        }
    }

    #[test]
    fn rank_all_sorted_and_complete() {
        let wf = two_task_wf();
        let ranked = rank_all(&wf, &Environment::dedicated(2));
        assert_eq!(ranked.len(), 4);
        assert!(ranked.windows(2).all(|w| w[0].makespan <= w[1].makespan));
        assert_eq!(ranked[0].assignment, vec![0, 0]);
    }

    #[test]
    fn rank_all_matches_oracle() {
        for (wf, env) in random_instances() {
            let fast = rank_all(&wf, &env);
            let oracle = rank_all_oracle(&wf, &env);
            assert_eq!(fast.len(), oracle.len());
            for (f, o) in fast.iter().zip(&oracle) {
                assert!((f.makespan - o.makespan).abs() < 1e-9, "{} vs {}", f.makespan, o.makespan);
            }
        }
    }

    #[cfg(feature = "par")]
    #[test]
    fn rank_all_par_matches_serial() {
        for (wf, env) in random_instances() {
            let par = rank_all_par(&wf, &env);
            let serial = rank_all(&wf, &env);
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert!((p.makespan - s.makespan).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn slowdown_reorders_schedules() {
        let wf = two_task_wf();
        let mut env = Environment::dedicated(2);
        env.comp_slowdown[0] = 3.0;
        let best = best_exhaustive(&wf, &env);
        // A moves to M2, B stays on the slowed M1 (the paper's Table 3).
        assert_eq!(best.assignment, vec![1, 0]);
        assert_eq!(best.makespan, 18.0 + 8.0 + 12.0);
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn evaluate_checks_length() {
        let wf = two_task_wf();
        evaluate(&wf, &[0], &Environment::dedicated(2));
    }
}
