//! Task and environment descriptions for allocation.
//!
//! The paper's target applications are "a few coarse-grained tasks" on a
//! small heterogeneous platform: a chain (pipeline) of tasks, each with a
//! dedicated execution time per machine, and a dedicated communication
//! cost between consecutive tasks when they land on different machines.
//! Contention enters as per-machine compute slowdown factors and
//! per-machine-pair link slowdown factors — exactly the outputs of the
//! contention model.

use serde::{Deserialize, Serialize};

/// A dense `machines × machines` matrix of link costs/factors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    n: usize,
    v: Vec<f64>,
}

impl Matrix {
    /// An `n × n` matrix filled with `fill`.
    pub fn filled(n: usize, fill: f64) -> Self {
        Matrix { n, v: vec![fill; n * n] }
    }

    /// Builds from rows; panics unless square.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let mut v = Vec::with_capacity(n * n);
        for r in rows {
            assert_eq!(r.len(), n, "matrix must be square");
            v.extend_from_slice(r);
        }
        Matrix { n, v }
    }

    /// Side length.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Entry `(from, to)`.
    pub fn get(&self, from: usize, to: usize) -> f64 {
        self.v[from * self.n + to]
    }

    /// Sets entry `(from, to)`.
    pub fn set(&mut self, from: usize, to: usize, value: f64) {
        self.v[from * self.n + to] = value;
    }

    /// True when the backing storage matches the declared size — always
    /// holds for constructed matrices, but deserialized ones (e.g. from
    /// a network peer) must be checked before indexing.
    pub fn is_consistent(&self) -> bool {
        self.v.len() == self.n * self.n
    }

    /// True when every entry is finite and at least `min`.
    pub fn entries_at_least(&self, min: f64) -> bool {
        self.v.iter().all(|x| x.is_finite() && *x >= min)
    }
}

/// One task of the application chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable task name.
    pub name: String,
    /// Dedicated execution time on each machine, seconds.
    pub exec: Vec<f64>,
    /// Dedicated cost of shipping this task's output to the next task,
    /// as a machine×machine matrix (diagonal = 0: same machine is free).
    /// `None` for the last task.
    pub comm_to_next: Option<Matrix>,
}

impl Task {
    /// A task with per-machine dedicated times and no outgoing edge.
    pub fn terminal(name: impl Into<String>, exec: Vec<f64>) -> Self {
        Task { name: name.into(), exec, comm_to_next: None }
    }

    /// A task with per-machine dedicated times and an outgoing transfer.
    pub fn with_edge(name: impl Into<String>, exec: Vec<f64>, comm: Matrix) -> Self {
        assert_eq!(exec.len(), comm.size(), "edge matrix size must match machine count");
        Task { name: name.into(), exec, comm_to_next: Some(comm) }
    }
}

/// A chain of tasks (the application).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Tasks in execution order.
    pub tasks: Vec<Task>,
}

impl Workflow {
    /// Builds a workflow, checking machine-count consistency and that only
    /// the last task lacks an outgoing edge.
    pub fn new(tasks: Vec<Task>) -> Self {
        assert!(!tasks.is_empty(), "empty workflow");
        let m = tasks[0].exec.len();
        assert!(m > 0, "no machines");
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.exec.len(), m, "task {i} machine count mismatch");
            if i + 1 < tasks.len() {
                assert!(t.comm_to_next.is_some(), "interior task {i} missing edge");
            }
        }
        Workflow { tasks }
    }

    /// Number of machines the workflow is described over.
    pub fn machines(&self) -> usize {
        self.tasks[0].exec.len()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when there are no tasks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Non-panicking validation for workflows built outside
    /// [`Workflow::new`] — deserialized from a wire peer, say. Checks
    /// everything `new` asserts plus value sanity: non-empty, consistent
    /// machine counts, interior edges present and well-formed, and every
    /// cost finite and non-negative.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.tasks.is_empty() {
            return Err("empty workflow".to_string());
        }
        let m = self.tasks[0].exec.len();
        if m == 0 {
            return Err("no machines".to_string());
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.exec.len() != m {
                return Err(format!("task {i} machine count mismatch"));
            }
            if !t.exec.iter().all(|x| x.is_finite() && *x >= 0.0) {
                return Err(format!("task {i} has a non-finite or negative execution time"));
            }
            match (&t.comm_to_next, i + 1 < self.tasks.len()) {
                (None, true) => return Err(format!("interior task {i} missing edge")),
                (Some(c), _) => {
                    if c.size() != m || !c.is_consistent() {
                        return Err(format!("task {i} edge matrix size mismatch"));
                    }
                    if !c.entries_at_least(0.0) {
                        return Err(format!("task {i} edge has a non-finite or negative cost"));
                    }
                }
                (None, false) => {}
            }
        }
        Ok(())
    }
}

/// Current contention state of the platform, as produced by the
/// contention model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Compute slowdown factor per machine (≥ 1).
    pub comp_slowdown: Vec<f64>,
    /// Link slowdown factor per machine pair (≥ 1; diagonal unused).
    pub link_slowdown: Matrix,
}

impl Environment {
    /// A dedicated environment (all factors 1).
    pub fn dedicated(machines: usize) -> Self {
        Environment {
            comp_slowdown: vec![1.0; machines],
            link_slowdown: Matrix::filled(machines, 1.0),
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.comp_slowdown.len()
    }

    /// Validates factor sanity (all ≥ 1).
    pub fn validate(&self) {
        assert!(self.comp_slowdown.iter().all(|s| *s >= 1.0), "compute slowdown below 1");
        for i in 0..self.link_slowdown.size() {
            for j in 0..self.link_slowdown.size() {
                assert!(self.link_slowdown.get(i, j) >= 1.0, "link slowdown below 1");
            }
        }
    }

    /// Non-panicking variant of [`validate`](Self::validate) for
    /// environments received from outside (adds the size-consistency
    /// checks deserialization cannot guarantee).
    pub fn try_validate(&self) -> Result<(), String> {
        if self.comp_slowdown.is_empty() {
            return Err("no machines".to_string());
        }
        if !self.comp_slowdown.iter().all(|s| s.is_finite() && *s >= 1.0) {
            return Err("compute slowdown below 1 or non-finite".to_string());
        }
        if self.link_slowdown.size() != self.comp_slowdown.len()
            || !self.link_slowdown.is_consistent()
        {
            return Err("link matrix size mismatch".to_string());
        }
        if !self.link_slowdown.entries_at_least(1.0) {
            return Err("link slowdown below 1 or non-finite".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip() {
        let mut m = Matrix::filled(2, 0.0);
        m.set(0, 1, 7.0);
        m.set(1, 0, 8.0);
        assert_eq!(m.get(0, 1), 7.0);
        assert_eq!(m.get(1, 0), 8.0);
        assert_eq!(m.get(0, 0), 0.0);
        let m2 = Matrix::from_rows(&[vec![0.0, 7.0], vec![8.0, 0.0]]);
        assert_eq!(m, m2);
    }

    #[test]
    fn workflow_validation() {
        let comm = Matrix::from_rows(&[vec![0.0, 7.0], vec![8.0, 0.0]]);
        let wf = Workflow::new(vec![
            Task::with_edge("A", vec![12.0, 18.0], comm),
            Task::terminal("B", vec![4.0, 30.0]),
        ]);
        assert_eq!(wf.machines(), 2);
        assert_eq!(wf.len(), 2);
    }

    #[test]
    #[should_panic(expected = "missing edge")]
    fn interior_task_needs_edge() {
        Workflow::new(vec![
            Task::terminal("A", vec![1.0, 2.0]),
            Task::terminal("B", vec![1.0, 2.0]),
        ]);
    }

    #[test]
    #[should_panic(expected = "machine count mismatch")]
    fn machine_counts_must_agree() {
        let comm = Matrix::filled(2, 0.0);
        Workflow::new(vec![
            Task::with_edge("A", vec![1.0, 2.0], comm),
            Task::terminal("B", vec![1.0, 2.0, 3.0]),
        ]);
    }

    #[test]
    fn environment_dedicated_is_valid() {
        let env = Environment::dedicated(3);
        env.validate();
        assert_eq!(env.machines(), 3);
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn environment_rejects_speedups() {
        let mut env = Environment::dedicated(2);
        env.comp_slowdown[0] = 0.5;
        env.validate();
    }
}
