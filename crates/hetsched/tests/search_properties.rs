//! Property tests for the Gray-code delta-evaluated schedule search: on
//! arbitrary chain instances it must agree with the seed's brute-force
//! full-re-evaluation oracle.

use hetsched::eval::{
    best_chain_dp, best_exhaustive, best_exhaustive_oracle, evaluate, rank_all, rank_all_oracle,
};
use hetsched::task::{Environment, Matrix, Task, Workflow};
use proptest::prelude::*;

/// A deterministic chain instance derived from `seed`, with contended
/// compute and link slowdown factors.
fn instance(machines: usize, tasks: usize, seed: u64) -> (Workflow, Environment) {
    let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) * 10.0
    };
    let mut v = Vec::new();
    for i in 0..tasks {
        let exec: Vec<f64> = (0..machines).map(|_| next() + 0.1).collect();
        if i + 1 < tasks {
            let mut comm = Matrix::filled(machines, 0.0);
            for a in 0..machines {
                for b in 0..machines {
                    if a != b {
                        comm.set(a, b, next());
                    }
                }
            }
            v.push(Task::with_edge(format!("t{i}"), exec, comm));
        } else {
            v.push(Task::terminal(format!("t{i}"), exec));
        }
    }
    let mut env = Environment::dedicated(machines);
    for f in env.comp_slowdown.iter_mut() {
        *f = 1.0 + next() / 5.0;
    }
    for a in 0..machines {
        for b in 0..machines {
            if a != b {
                env.link_slowdown.set(a, b, 1.0 + next() / 5.0);
            }
        }
    }
    (Workflow::new(v), env)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    fn gray_best_matches_bruteforce_oracle(
        machines in 2usize..5,
        tasks in 1usize..7,
        seed in 0u64..1_000_000,
    ) {
        let (wf, env) = instance(machines, tasks, seed);
        let fast = best_exhaustive(&wf, &env);
        let oracle = best_exhaustive_oracle(&wf, &env);
        prop_assert!(
            (fast.makespan - oracle.makespan).abs() < 1e-9,
            "gray {} vs oracle {}",
            fast.makespan,
            oracle.makespan
        );
        // The returned makespan is an exact evaluation of its own
        // assignment (no residual incremental drift).
        prop_assert_eq!(fast.makespan, evaluate(&wf, &fast.assignment, &env));
        // And the chain DP, exact by construction, agrees too.
        let dp = best_chain_dp(&wf, &env);
        prop_assert!((fast.makespan - dp.makespan).abs() < 1e-9);
    }

    fn gray_rank_all_matches_bruteforce_oracle(
        machines in 2usize..4,
        tasks in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let (wf, env) = instance(machines, tasks, seed);
        let fast = rank_all(&wf, &env);
        let oracle = rank_all_oracle(&wf, &env);
        prop_assert_eq!(fast.len(), oracle.len());
        prop_assert!(fast.windows(2).all(|w| w[0].makespan <= w[1].makespan));
        for (f, o) in fast.iter().zip(&oracle) {
            prop_assert!(
                (f.makespan - o.makespan).abs() < 1e-9,
                "rank makespan {} vs oracle {}",
                f.makespan,
                o.makespan
            );
        }
    }
}
